// Tests for the scenario builders: the PlanetLab testbed's §4.1 coverage
// guarantees, live-Tor population statistics, rDNS synthesis, and the
// consensus timeline used by Fig 18.
#include <gtest/gtest.h>

#include <set>

#include "scenario/rdns.h"
#include "scenario/testbed.h"
#include "scenario/timeline.h"

namespace ting::scenario {
namespace {

TestbedOptions fast_options(std::uint64_t seed = 3) {
  TestbedOptions o;
  o.seed = seed;
  o.start_measurement_host = false;  // cheaper when only inspecting topology
  return o;
}

TEST(PlanetLabTest, HasPaperGeography) {
  Testbed tb = planetlab31(fast_options());
  EXPECT_EQ(tb.relay_count(), 31u);
  std::set<std::string> eu_countries, us_cities;
  bool asia = false, sa = false, au = false, me = false;
  for (std::size_t i = 0; i < tb.relay_count(); ++i) {
    const auto& d = tb.relay(i).descriptor();
    const std::string cc = d.country_code;
    if (cc == "JP") asia = true;
    if (cc == "BR") sa = true;
    if (cc == "AU") au = true;
    if (cc == "IL") me = true;
    for (const char* eu : {"GB", "FR", "DE", "NL", "SE", "CH", "AT"})
      if (cc == eu) eu_countries.insert(cc);
  }
  EXPECT_GE(eu_countries.size(), 6u);
  EXPECT_TRUE(asia);
  EXPECT_TRUE(sa);
  EXPECT_TRUE(au);
  EXPECT_TRUE(me);
}

TEST(PlanetLabTest, PairwiseRttsSpanPaperRange) {
  Testbed tb = planetlab31(fast_options(5));
  double lo = 1e18, hi = 0;
  std::set<std::int64_t> distinct;
  for (std::size_t i = 0; i < tb.relay_count(); ++i)
    for (std::size_t j = i + 1; j < tb.relay_count(); ++j) {
      const double ms = tb.true_rtt_ms(tb.fp(i), tb.fp(j));
      lo = std::min(lo, ms);
      hi = std::max(hi, ms);
      distinct.insert(static_cast<std::int64_t>(ms * 1e6));
    }
  // §4.1: latencies "ranged from very close (~0ms) to nearly antipodal
  // (~500ms)" and were unique per pair.
  EXPECT_LT(lo, 25.0);
  EXPECT_GT(hi, 250.0);
  EXPECT_EQ(distinct.size(), 31u * 30 / 2);
}

TEST(PlanetLabTest, MeasurementHostStartsAndMeasures) {
  TestbedOptions o;
  o.seed = 8;
  o.differential_fraction = 0;
  Testbed tb = planetlab31(o);
  EXPECT_TRUE(tb.ting().ready());
}

TEST(PlanetLabTest, ExitPoliciesAreRestrictive) {
  Testbed tb = planetlab31(fast_options(9));
  const IpAddr meas_ip = tb.net().ip_of(tb.measurement_host());
  for (std::size_t i = 0; i < tb.relay_count(); ++i) {
    const auto& policy = tb.relay(i).descriptor().exit_policy;
    EXPECT_TRUE(policy.allows(meas_ip, 4242));
    EXPECT_FALSE(policy.allows(IpAddr(8, 8, 8, 8), 80));
  }
}

TEST(LiveTorTest, PopulationStatisticsMatchTargets) {
  Testbed tb = live_tor(400, fast_options(13));
  EXPECT_EQ(tb.relay_count(), 400u);
  int named = 0, residential = 0, us_eu = 0, guards = 0, fast = 0;
  std::set<std::uint32_t> slash24;
  for (std::size_t i = 0; i < tb.relay_count(); ++i) {
    const auto& d = tb.relay(i).descriptor();
    slash24.insert(d.address.slash24());
    if (!d.reverse_dns.empty()) {
      ++named;
      if (d.reverse_dns.find("-sim.net") != std::string::npos ||
          d.reverse_dns.find("comcast") != std::string::npos ||
          d.reverse_dns.find("dip0") != std::string::npos ||
          d.reverse_dns.find("wanadoo") != std::string::npos ||
          d.reverse_dns.find("p") == 0)
        residential += (d.reverse_dns.find("server-") != 0) ? 1 : 0;
    }
    for (const char* cc :
         {"US", "DE", "FR", "NL", "GB", "SE", "CH", "AT", "IT", "ES", "PL",
          "CZ", "RO", "RU", "FI", "DK", "NO", "IE", "HU", "GR", "PT", "BE",
          "UA", "IS", "LU", "BG", "SI", "HR", "LT", "EE", "LV"})
      if (d.country_code == cc) {
        ++us_eu;
        break;
      }
    if (d.has_flag(dir::kFlagGuard)) ++guards;
    if (d.has_flag(dir::kFlagFast)) ++fast;
  }
  EXPECT_GT(named, 300);                  // ~83% have rDNS
  EXPECT_GT(residential, named / 2);      // ~61% of named are residential
  EXPECT_GT(us_eu, 280);                  // strong US/EU concentration
  EXPECT_GT(guards, 20);
  EXPECT_GT(fast, 100);
  // Residential hosts scatter across /24s: nearly one prefix per relay.
  EXPECT_GT(slash24.size(), 250u);
}

TEST(RdnsTest, ClassShapesAndDeterminism) {
  Rng rng(17);
  const IpAddr ip(73, 120, 42, 7);
  const std::string us = make_rdns(ip, HostClass::kResidential, "US", rng);
  EXPECT_EQ(us.find("c-73-120-42-7"), 0u);
  const std::string de = make_rdns(ip, HostClass::kResidential, "DE", rng);
  EXPECT_EQ(de[0], 'p');
  const std::string dc = make_rdns(ip, HostClass::kDatacenter, "US", rng);
  EXPECT_EQ(dc.find("server-"), 0u);
  EXPECT_EQ(make_rdns(ip, HostClass::kNoRdns, "US", rng), "");
}

TEST(TimelineTest, TracksPaperScaleAndGrowth) {
  TimelineOptions o;
  o.days = 60;
  o.initial_relays = 6400;
  const ConsensusTimeline tl = make_timeline(o);
  ASSERT_EQ(tl.days.size(), 60u);
  EXPECT_EQ(tl.days.front().date, "2015-02-28");
  EXPECT_EQ(tl.days.back().date, "2015-04-28");
  // Fig 18's bands: ~6-7k relays running, 5426-6044 unique /24s (a
  // /24-to-relay ratio of roughly 0.85).
  for (const auto& d : tl.days) {
    EXPECT_GT(d.total_relays, 5500u);
    EXPECT_LT(d.total_relays, 8500u);
    EXPECT_GT(d.unique_slash24, 5000u);
    EXPECT_LT(d.unique_slash24, d.total_relays);
    const double ratio = static_cast<double>(d.unique_slash24) /
                         static_cast<double>(d.total_relays);
    EXPECT_GT(ratio, 0.75);
    EXPECT_LT(ratio, 0.97);
  }
  // Net growth over the window.
  EXPECT_GT(tl.days.back().total_relays, tl.days.front().total_relays);
  EXPECT_EQ(tl.final_consensus.size(), tl.days.back().total_relays);
}

TEST(TimelineTest, DeterministicForSeed) {
  TimelineOptions o;
  o.days = 10;
  o.initial_relays = 500;
  const ConsensusTimeline a = make_timeline(o);
  const ConsensusTimeline b = make_timeline(o);
  ASSERT_EQ(a.days.size(), b.days.size());
  for (std::size_t i = 0; i < a.days.size(); ++i) {
    EXPECT_EQ(a.days[i].total_relays, b.days[i].total_relays);
    EXPECT_EQ(a.days[i].unique_slash24, b.days[i].unique_slash24);
  }
}

}  // namespace
}  // namespace ting::scenario
