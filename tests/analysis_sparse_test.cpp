// The missing-pair contract: every analysis entry point must analyse a
// partially-converged matrix (a daemon store mid-convergence) instead of
// aborting, and estimators must scale by what was actually sampled. Also
// pins the back-compat guarantee: on a complete matrix the try_ variants
// consume the same RNG stream as the historical code paths.
#include <gtest/gtest.h>

#include "analysis/circuits.h"
#include "analysis/deanon.h"
#include "analysis/path_selection.h"
#include "analysis/tiv.h"
#include "util/rng.h"

namespace ting::analysis {
namespace {

dir::Fingerprint fp_of(std::uint32_t i) {
  crypto::X25519Key k{};
  k[0] = static_cast<std::uint8_t>(i);
  k[1] = static_cast<std::uint8_t>(i >> 8);
  return dir::Fingerprint::of_identity(k);
}

/// Random world with a configurable fraction of pairs left unmeasured.
struct World {
  std::vector<dir::Fingerprint> fps;
  meas::RttMatrix matrix;

  explicit World(std::size_t n, double missing_fraction,
                 std::uint64_t seed = 21) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
      fps.push_back(fp_of(static_cast<std::uint32_t>(i)));
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.uniform(0.0, 1.0) < missing_fraction) continue;
        matrix.set(fps[i], fps[j], rng.uniform(20.0, 400.0));
      }
  }
};

// ---------------------------------------------------------------- circuits

TEST(SparseCircuitsTest, TryCircuitRttReportsMissingHops) {
  World w(10, 0.5);
  std::size_t complete = 0, incomplete = 0;
  for (std::size_t a = 0; a + 2 < w.fps.size(); ++a) {
    const std::vector<std::size_t> path{a, a + 1, a + 2};
    const auto rtt = try_circuit_rtt_ms(w.matrix, w.fps, path);
    const bool measured = w.matrix.contains(w.fps[a], w.fps[a + 1]) &&
                          w.matrix.contains(w.fps[a + 1], w.fps[a + 2]);
    ASSERT_EQ(rtt.has_value(), measured);
    measured ? ++complete : ++incomplete;
  }
  EXPECT_GT(incomplete, 0u);  // the world is actually sparse
}

TEST(SparseCircuitsTest, SampleCircuitsSkipsIncompleteDraws) {
  World w(15, 0.4);
  Rng rng(5);
  const auto samples = sample_circuits(w.matrix, w.fps, 3, 100, rng);
  EXPECT_FALSE(samples.empty());
  EXPECT_LE(samples.size(), 100u);
  for (const auto& s : samples) {
    const auto rtt = try_circuit_rtt_ms(w.matrix, w.fps, s.path);
    ASSERT_TRUE(rtt.has_value());  // only complete circuits come back
    EXPECT_DOUBLE_EQ(*rtt, s.rtt_ms);
  }
}

TEST(SparseCircuitsTest, CompleteMatrixKeepsHistoricalStream) {
  // On a complete matrix every draw is valid, so the skip-loop must
  // consume exactly one sample_indices draw per sample — the historical
  // stream, which deterministic figure pipelines depend on.
  World w(12, 0.0);
  Rng a(77), b(77);
  const auto samples = sample_circuits(w.matrix, w.fps, 4, 50, a);
  ASSERT_EQ(samples.size(), 50u);
  for (const auto& s : samples)
    EXPECT_EQ(s.path, b.sample_indices(w.fps.size(), 4));
}

TEST(SparseCircuitsTest, HistogramScalesByValidSamples) {
  World w(14, 0.3);
  Rng rng(6);
  const auto hist =
      circuit_rtt_histogram(w.matrix, w.fps, 3, 500, 50.0, 40, rng);
  double total = 0;
  for (double c : hist.scaled_counts) total += c;
  // Dividing by valid draws keeps the total estimate at C(n, 3) no matter
  // how sparse the matrix is (every valid draw lands in some bin).
  EXPECT_NEAR(total, n_choose_k(14, 3), 1e-6);
}

TEST(SparseCircuitsTest, HistogramOnUnmeasurableWorldIsEmptyNotFatal) {
  World w(8, 1.0);  // nothing measured at all
  Rng rng(7);
  const auto hist =
      circuit_rtt_histogram(w.matrix, w.fps, 3, 50, 50.0, 10, rng);
  for (double c : hist.scaled_counts) EXPECT_DOUBLE_EQ(c, 0.0);
}

// ---------------------------------------------------------- path selection

TEST(SparsePathSelectionTest, BandSearchSkipsIncompletePaths) {
  World w(15, 0.4);
  Rng rng(8);
  BandQuery q;
  q.length = 3;
  q.rtt_lo_ms = 0;
  q.rtt_hi_ms = 1e9;
  q.want = 20;
  const auto hits = find_circuits_in_band(w.matrix, w.fps, q, rng);
  EXPECT_FALSE(hits.empty());
  for (const auto& h : hits)
    EXPECT_TRUE(try_circuit_rtt_ms(w.matrix, w.fps, h.path).has_value());
}

TEST(SparsePathSelectionTest, OptimizerSurvivesSparseMatrix) {
  World w(15, 0.5);
  Rng rng(9);
  const CircuitSample best = optimize_low_rtt_circuit(w.matrix, w.fps, 3, rng);
  if (best.path.empty()) return;  // legitimately found nothing
  const auto rtt = try_circuit_rtt_ms(w.matrix, w.fps, best.path);
  ASSERT_TRUE(rtt.has_value());
  EXPECT_DOUBLE_EQ(*rtt, best.rtt_ms);
}

TEST(SparsePathSelectionTest, OptimizerOnEmptyMatrixReturnsEmptyPath) {
  World w(10, 1.0);
  Rng rng(10);
  const CircuitSample best = optimize_low_rtt_circuit(w.matrix, w.fps, 3, rng);
  EXPECT_TRUE(best.path.empty());
}

TEST(SparsePathSelectionTest, OptionsInBandDividesByValidSamples) {
  // Craft a world where every *measured* 2-hop circuit lands in the band:
  // the estimate must then be the full population, which only happens when
  // the divisor is the valid-sample count, not the request.
  World w(12, 0.5);
  Rng rng(11);
  const auto options =
      circuit_options_in_band(w.matrix, w.fps, 3, 0, 1e12, 400, rng);
  ASSERT_TRUE(options.has_value());
  EXPECT_NEAR(*options, n_choose_k(12, 3), 1e-6);
}

TEST(SparsePathSelectionTest, OptionsInBandNulloptWhenNothingMeasurable) {
  World w(10, 1.0);
  Rng rng(12);
  EXPECT_FALSE(
      circuit_options_in_band(w.matrix, w.fps, 3, 0, 1e12, 100, rng)
          .has_value());
  EXPECT_FALSE(
      recommend_length_for_band(w.matrix, w.fps, 0, 1e12, 5, 100, rng)
          .has_value());
}

// --------------------------------------------------------------------- tiv

TEST(SparseTivTest, SummaryMatchesPerPairScan) {
  World w(16, 0.35);
  const auto summary = tiv_summary(w.matrix);
  // The single-pass summary must agree with the per-pair reference scan,
  // in the same sorted-fingerprint order the legacy loop iterated.
  const auto nodes = w.matrix.nodes();
  std::size_t measured = 0;
  std::vector<TivFinding> reference;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      if (w.matrix.contains(nodes[i], nodes[j])) ++measured;
      if (auto f = best_tiv(w.matrix, nodes[i], nodes[j]); f.has_value())
        reference.push_back(*f);
    }
  EXPECT_EQ(summary.measured_pairs, measured);
  ASSERT_EQ(summary.findings.size(), reference.size());
  for (std::size_t k = 0; k < reference.size(); ++k) {
    EXPECT_EQ(summary.findings[k].a, reference[k].a);
    EXPECT_EQ(summary.findings[k].b, reference[k].b);
    EXPECT_EQ(summary.findings[k].detour, reference[k].detour);
    EXPECT_DOUBLE_EQ(summary.findings[k].direct_ms, reference[k].direct_ms);
    EXPECT_DOUBLE_EQ(summary.findings[k].detour_ms, reference[k].detour_ms);
  }
  EXPECT_DOUBLE_EQ(summary.fraction,
                   measured == 0 ? 0.0
                                 : static_cast<double>(reference.size()) /
                                       static_cast<double>(measured));
  // And the legacy entry points are views of the same pass.
  EXPECT_EQ(find_all_tivs(w.matrix).size(), summary.findings.size());
  EXPECT_DOUBLE_EQ(fraction_pairs_with_tiv(w.matrix), summary.fraction);
}

TEST(SparseTivTest, FractionDenominatorIsMeasuredPairs) {
  // 4 nodes, one measured pair with a two-leg detour beating it: fraction
  // must be 1/1, not 1/C(4,2).
  meas::RttMatrix m;
  const auto a = fp_of(1), b = fp_of(2), r = fp_of(3);
  m.set(a, b, 100.0);
  m.set(a, r, 30.0);
  m.set(r, b, 40.0);
  const auto summary = tiv_summary(m);
  EXPECT_EQ(summary.measured_pairs, 3u);  // (a,b), (a,r), (r,b)
  ASSERT_EQ(summary.findings.size(), 1u);
  EXPECT_EQ(summary.findings[0].detour, r);
  EXPECT_DOUBLE_EQ(summary.fraction, 1.0 / 3.0);
}

// ------------------------------------------------------------------ deanon

TEST(SparseDeanonTest, TrySampleCircuitOnlyUsesMeasuredLegs) {
  World w(14, 0.4);
  DeanonWorld dw;
  dw.nodes = w.fps;
  dw.matrix = &w.matrix;
  Rng rng(13);
  for (int i = 0; i < 20; ++i) {
    const auto c = try_sample_circuit(dw, rng, false);
    ASSERT_TRUE(c.has_value());
    EXPECT_TRUE(dw.try_rtt(c->source, c->entry).has_value());
    EXPECT_TRUE(dw.try_rtt(c->entry, c->middle).has_value());
    EXPECT_TRUE(dw.try_rtt(c->middle, c->exit).has_value());
  }
}

TEST(SparseDeanonTest, TrySampleCircuitMatchesLegacyOnCompleteMatrix) {
  World w(10, 0.0);
  DeanonWorld dw;
  dw.nodes = w.fps;
  dw.matrix = &w.matrix;
  Rng a(14), b(14);
  for (int i = 0; i < 10; ++i) {
    const auto tried = try_sample_circuit(dw, a, false);
    const auto legacy = sample_circuit(dw, b, false);
    ASSERT_TRUE(tried.has_value());
    EXPECT_EQ(tried->source, legacy.source);
    EXPECT_EQ(tried->entry, legacy.entry);
    EXPECT_EQ(tried->middle, legacy.middle);
    EXPECT_EQ(tried->exit, legacy.exit);
    EXPECT_DOUBLE_EQ(tried->e2e_ms, legacy.e2e_ms);
  }
}

TEST(SparseDeanonTest, TrySampleCircuitNulloptOnUnmeasurableWorld) {
  World w(6, 1.0);
  DeanonWorld dw;
  dw.nodes = w.fps;
  dw.matrix = &w.matrix;
  Rng rng(15);
  EXPECT_FALSE(try_sample_circuit(dw, rng, false, 20).has_value());
}

TEST(SparseDeanonTest, AllStrategiesRunToCompletionOnSparseMatrix) {
  World w(14, 0.35);
  DeanonWorld dw;
  dw.nodes = w.fps;
  dw.matrix = &w.matrix;
  for (const Strategy strategy :
       {Strategy::kRttUnaware, Strategy::kIgnoreTooLarge,
        Strategy::kInformed}) {
    Rng crng(42), prng(43);
    int successes = 0;
    for (int run = 0; run < 15; ++run) {
      const auto c = try_sample_circuit(dw, crng, false);
      ASSERT_TRUE(c.has_value());
      const DeanonResult r = deanonymize(dw, *c, strategy, prng);
      EXPECT_GE(r.probes, 0);
      if (r.success) {
        ++successes;
        EXPECT_TRUE(r.identified.contains(c->entry));
        EXPECT_TRUE(r.identified.contains(c->middle));
      }
    }
    // The oracle probe always separates the true pair eventually; what
    // sparsity may cost is pruning power, never correctness or termination.
    EXPECT_GT(successes, 0) << "strategy " << static_cast<int>(strategy);
  }
}

}  // namespace
}  // namespace ting::analysis
