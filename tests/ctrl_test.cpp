// Tests for the control protocol: authentication gating, command grammar,
// event subscription/filtering, EXTENDCIRCUIT/ATTACHSTREAM flows, and the
// Controller (Stem-equivalent) client.
#include <gtest/gtest.h>

#include "ctrl/control_server.h"
#include "ctrl/controller.h"
#include "dir/consensus.h"
#include "echo/echo.h"
#include "simnet/network.h"
#include "tor/onion_proxy.h"
#include "tor/relay.h"

namespace ting::ctrl {
namespace {

simnet::LatencyConfig quiet_net() {
  simnet::LatencyConfig c;
  c.jitter_mean_ms = 0.01;
  c.jitter_spike_prob = 0;
  return c;
}

struct ControlWorld {
  simnet::EventLoop loop;
  simnet::Network net;
  std::vector<std::unique_ptr<tor::Relay>> relays;
  std::unique_ptr<tor::OnionProxy> op;
  std::unique_ptr<ControlServer> server;
  std::unique_ptr<echo::EchoServer> echo_server;
  simnet::HostId op_host = 0, client_host = 0, echo_host = 0;

  explicit ControlWorld(int n_relays, const std::string& password = "")
      : net(loop, quiet_net(), 51) {
    dir::Consensus consensus;
    for (int i = 0; i < n_relays; ++i) {
      const simnet::HostId h = net.add_host(
          IpAddr(10, static_cast<std::uint8_t>(20 + i), 0, 1),
          {35.0 + i, -80.0 + 2 * i});
      tor::RelayConfig rc;
      rc.nickname = "ctl" + std::to_string(i);
      rc.exit_policy = dir::ExitPolicy::accept_all();
      rc.base_forward_ms = 0.3;
      rc.queue_mean_ms = 0.2;
      relays.push_back(std::make_unique<tor::Relay>(net, h, rc, 300 + static_cast<std::uint64_t>(i)));
      consensus.add(relays.back()->descriptor());
    }
    op_host = net.add_host(IpAddr(10, 2, 0, 1), {40.0, -100.0});
    client_host = net.add_host(IpAddr(10, 2, 1, 1), {40.0, -100.02});
    echo_host = net.add_host(IpAddr(10, 2, 2, 1), {40.0, -100.04});
    op = std::make_unique<tor::OnionProxy>(net, op_host, tor::OnionProxyConfig{}, 91);
    op->set_consensus(consensus);
    server = std::make_unique<ControlServer>(*op, kControlPort, password);
    echo_server = std::make_unique<echo::EchoServer>(net, echo_host);
  }

  /// Open a raw control connection and exchange one command at a time.
  simnet::ConnPtr raw_session(std::function<void(std::string)> on_reply) {
    simnet::ConnPtr out;
    net.connect(client_host, server->endpoint(), simnet::Protocol::kTcp,
                [&](simnet::ConnPtr conn) {
                  out = conn;
                  conn->set_on_message([on_reply](Bytes msg) {
                    on_reply(std::string(msg.begin(), msg.end()));
                  });
                });
    loop.run_while_waiting_for([&] { return out != nullptr; },
                               Duration::seconds(10));
    return out;
  }

  Controller::Ptr controller(const std::string& password = "") {
    Controller::Ptr out;
    Controller::create(net, client_host, server->endpoint(), password,
                       [&](Controller::Ptr c) { out = std::move(c); });
    loop.run_while_waiting_for([&] { return out != nullptr; },
                               Duration::seconds(10));
    return out;
  }
};

std::string send_and_wait(ControlWorld& w, const simnet::ConnPtr& conn,
                          std::string& last_reply, const std::string& cmd) {
  const std::string before = last_reply;
  conn->send(Bytes(cmd.begin(), cmd.end()));
  w.loop.run_while_waiting_for([&] { return last_reply != before; },
                               Duration::seconds(10));
  return last_reply;
}

TEST(ControlServerTest, ProtocolInfoWithoutAuth) {
  ControlWorld w(0);
  std::string reply;
  auto conn = w.raw_session([&](std::string r) { reply = std::move(r); });
  ASSERT_NE(conn, nullptr);
  send_and_wait(w, conn, reply, "PROTOCOLINFO");
  EXPECT_NE(reply.find("250-PROTOCOLINFO 1"), std::string::npos);
  EXPECT_NE(reply.find("METHODS=NULL"), std::string::npos);
}

TEST(ControlServerTest, CommandsGatedUntilAuthenticated) {
  ControlWorld w(0);
  std::string reply;
  auto conn = w.raw_session([&](std::string r) { reply = std::move(r); });
  send_and_wait(w, conn, reply, "GETINFO version");
  EXPECT_TRUE(starts_with(reply, "514"));
  send_and_wait(w, conn, reply, "AUTHENTICATE \"\"");
  EXPECT_TRUE(starts_with(reply, "250"));
  send_and_wait(w, conn, reply, "GETINFO version");
  EXPECT_NE(reply.find("0.2.4.22-ting-sim"), std::string::npos);
}

TEST(ControlServerTest, PasswordAuthentication) {
  ControlWorld w(0, "s3cret");
  std::string reply;
  auto conn = w.raw_session([&](std::string r) { reply = std::move(r); });
  send_and_wait(w, conn, reply, "AUTHENTICATE \"wrong\"");
  EXPECT_TRUE(starts_with(reply, "515"));
  send_and_wait(w, conn, reply, "AUTHENTICATE \"s3cret\"");
  EXPECT_TRUE(starts_with(reply, "250"));
}

TEST(ControlServerTest, UnknownCommandAndBadSyntax) {
  ControlWorld w(0);
  std::string reply;
  auto conn = w.raw_session([&](std::string r) { reply = std::move(r); });
  send_and_wait(w, conn, reply, "AUTHENTICATE \"\"");
  send_and_wait(w, conn, reply, "FROBNICATE");
  EXPECT_TRUE(starts_with(reply, "510"));
  send_and_wait(w, conn, reply, "EXTENDCIRCUIT");
  EXPECT_TRUE(starts_with(reply, "512"));
  send_and_wait(w, conn, reply, "EXTENDCIRCUIT 0 nothex");
  EXPECT_TRUE(starts_with(reply, "552"));
  send_and_wait(w, conn, reply, "GETINFO bogus-key");
  EXPECT_TRUE(starts_with(reply, "552"));
}

TEST(ControlServerTest, ExtendCircuitEmitsBuiltEvent) {
  ControlWorld w(2);
  std::vector<std::string> replies;
  auto conn = w.raw_session([&](std::string r) { replies.push_back(std::move(r)); });
  auto wait_for = [&](const std::string& needle) {
    w.loop.run_while_waiting_for(
        [&] {
          for (const auto& r : replies)
            if (r.find(needle) != std::string::npos) return true;
          return false;
        },
        Duration::seconds(60));
  };
  conn->send(Bytes{'A', 'U', 'T', 'H', 'E', 'N', 'T', 'I', 'C', 'A', 'T', 'E',
                   ' ', '"', '"'});
  wait_for("250 OK");
  const std::string ev = "SETEVENTS CIRC";
  conn->send(Bytes(ev.begin(), ev.end()));
  wait_for("250 OK");
  const std::string cmd = "EXTENDCIRCUIT 0 " +
                          w.relays[0]->fingerprint().hex() + "," +
                          w.relays[1]->fingerprint().hex();
  conn->send(Bytes(cmd.begin(), cmd.end()));
  wait_for("250 EXTENDED");
  wait_for("650 CIRC");
  bool saw_built = false;
  for (const auto& r : replies)
    if (r.find("BUILT") != std::string::npos) saw_built = true;
  w.loop.run_while_waiting_for([&] {
    for (const auto& r : replies)
      if (r.find("BUILT") != std::string::npos) return true;
    return false;
  }, Duration::seconds(60));
  for (const auto& r : replies)
    if (r.find("BUILT") != std::string::npos) saw_built = true;
  EXPECT_TRUE(saw_built);
}

TEST(ControlServerTest, EventsOnlyForSubscribers) {
  ControlWorld w(2);
  std::vector<std::string> replies;
  auto conn = w.raw_session([&](std::string r) { replies.push_back(std::move(r)); });
  const std::string auth = "AUTHENTICATE \"\"";
  conn->send(Bytes(auth.begin(), auth.end()));
  w.loop.run_while_waiting_for([&] { return !replies.empty(); },
                               Duration::seconds(10));
  // No SETEVENTS: a circuit build must produce no 650 lines here.
  const std::string cmd = "EXTENDCIRCUIT 0 " +
                          w.relays[0]->fingerprint().hex() + "," +
                          w.relays[1]->fingerprint().hex();
  conn->send(Bytes(cmd.begin(), cmd.end()));
  w.loop.run();
  for (const auto& r : replies) EXPECT_FALSE(starts_with(r, "650"));
}

TEST(ControllerTest, ExtendCircuitResolvesOnBuilt) {
  ControlWorld w(3);
  auto ctl = w.controller();
  ASSERT_NE(ctl, nullptr);
  std::optional<tor::CircuitHandle> built;
  ctl->extend_circuit(
      {w.relays[0]->fingerprint(), w.relays[1]->fingerprint(),
       w.relays[2]->fingerprint()},
      [&](tor::CircuitHandle h) { built = h; },
      [](const std::string& e) { FAIL() << e; });
  w.loop.run_while_waiting_for([&] { return built.has_value(); },
                               Duration::seconds(60));
  ASSERT_TRUE(built.has_value());
  EXPECT_EQ(w.op->circuit_state(*built), tor::CircuitState::kBuilt);
}

TEST(ControllerTest, ExtendCircuitFailureReported) {
  ControlWorld w(1);
  auto ctl = w.controller();
  crypto::X25519Key bogus;
  bogus.fill(3);
  std::optional<std::string> error;
  ctl->extend_circuit(
      {w.relays[0]->fingerprint(), dir::Fingerprint::of_identity(bogus)},
      [](tor::CircuitHandle) { FAIL() << "unexpected build success"; },
      [&](const std::string& e) { error = e; });
  w.loop.run_while_waiting_for([&] { return error.has_value(); },
                               Duration::seconds(60));
  EXPECT_TRUE(error.has_value());
}

TEST(ControllerTest, LeaveUnattachedPlusAttachStream) {
  ControlWorld w(3);
  auto ctl = w.controller();
  bool conf_done = false;
  ctl->set_leave_streams_unattached(true, [&] { conf_done = true; });
  w.loop.run_while_waiting_for([&] { return conf_done; },
                               Duration::seconds(10));
  ASSERT_TRUE(conf_done);

  std::optional<tor::CircuitHandle> circ;
  ctl->extend_circuit(
      {w.relays[0]->fingerprint(), w.relays[1]->fingerprint(),
       w.relays[2]->fingerprint()},
      [&](tor::CircuitHandle h) { circ = h; }, {});
  w.loop.run_while_waiting_for([&] { return circ.has_value(); },
                               Duration::seconds(60));
  ASSERT_TRUE(circ.has_value());

  // The controller learns about the new stream and attaches it.
  std::optional<std::uint16_t> new_stream;
  ctl->set_on_stream_new(
      [&](std::uint16_t sid, std::string) { new_stream = sid; });

  bool socks_ok = false;
  w.net.connect(w.client_host,
                Endpoint{w.net.ip_of(w.op_host), w.op->config().socks_port},
                simnet::Protocol::kTcp, [&](simnet::ConnPtr conn) {
                  conn->set_on_message([&](Bytes msg) {
                    if (std::string(msg.begin(), msg.end()) == "OK")
                      socks_ok = true;
                  });
                  const std::string req =
                      "CONNECT " + w.echo_server->endpoint().str();
                  conn->send(Bytes(req.begin(), req.end()));
                });
  w.loop.run_while_waiting_for([&] { return new_stream.has_value(); },
                               Duration::seconds(60));
  ASSERT_TRUE(new_stream.has_value());
  EXPECT_FALSE(socks_ok);

  std::optional<bool> attach_ok;
  ctl->attach_stream(*new_stream, *circ, [&](bool ok) { attach_ok = ok; });
  w.loop.run_while_waiting_for([&] { return socks_ok; },
                               Duration::seconds(60));
  EXPECT_TRUE(attach_ok.value_or(false));
  EXPECT_TRUE(socks_ok);
}

TEST(ControllerTest, GetInfoNsAllListsRelays) {
  ControlWorld w(4);
  auto ctl = w.controller();
  std::optional<std::string> reply;
  ctl->get_info("ns/all", [&](std::string r) { reply = std::move(r); });
  w.loop.run_while_waiting_for([&] { return reply.has_value(); },
                               Duration::seconds(10));
  ASSERT_TRUE(reply.has_value());
  for (const auto& r : w.relays)
    EXPECT_NE(reply->find(r->fingerprint().hex()), std::string::npos);
}

TEST(ControllerTest, CloseCircuitViaController) {
  ControlWorld w(2);
  auto ctl = w.controller();
  std::optional<tor::CircuitHandle> circ;
  ctl->extend_circuit(
      {w.relays[0]->fingerprint(), w.relays[1]->fingerprint()},
      [&](tor::CircuitHandle h) { circ = h; }, {});
  w.loop.run_while_waiting_for([&] { return circ.has_value(); },
                               Duration::seconds(60));
  ASSERT_TRUE(circ.has_value());
  bool closed = false;
  ctl->close_circuit(*circ, [&] { closed = true; });
  w.loop.run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(w.op->circuit_state(*circ), tor::CircuitState::kClosed);
  EXPECT_EQ(w.relays[0]->open_circuits(), 0u);
}

}  // namespace
}  // namespace ting::ctrl

namespace ting::ctrl {
namespace {

TEST(ControlServerTest, SignalNewnymClosesCircuits) {
  ControlWorld w(3);
  auto ctl = w.controller();
  std::optional<tor::CircuitHandle> c1, c2;
  ctl->extend_circuit({w.relays[0]->fingerprint(), w.relays[1]->fingerprint()},
                      [&](tor::CircuitHandle h) { c1 = h; }, {});
  ctl->extend_circuit({w.relays[1]->fingerprint(), w.relays[2]->fingerprint()},
                      [&](tor::CircuitHandle h) { c2 = h; }, {});
  w.loop.run_while_waiting_for(
      [&] { return c1.has_value() && c2.has_value(); }, Duration::seconds(60));
  ASSERT_TRUE(c1.has_value() && c2.has_value());

  std::optional<std::string> reply;
  ctl->raw_command("SIGNAL NEWNYM", [&](std::string r) { reply = r; });
  w.loop.run_while_waiting_for([&] { return reply.has_value(); },
                               Duration::seconds(10));
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(starts_with(*reply, "250"));
  w.loop.run();
  EXPECT_EQ(w.op->circuit_state(*c1), tor::CircuitState::kClosed);
  EXPECT_EQ(w.op->circuit_state(*c2), tor::CircuitState::kClosed);
  for (const auto& r : w.relays) EXPECT_EQ(r->open_circuits(), 0u);
}

TEST(ControlServerTest, SignalRejectsUnknown) {
  ControlWorld w(0);
  auto ctl = w.controller();
  std::optional<std::string> reply;
  ctl->raw_command("SIGNAL DORMANT", [&](std::string r) { reply = r; });
  w.loop.run_while_waiting_for([&] { return reply.has_value(); },
                               Duration::seconds(10));
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(starts_with(*reply, "552"));
}

TEST(ControlServerTest, GetInfoEntryGuards) {
  ControlWorld w(6);
  // Flag all relays as guards so the guard set can fill.
  dir::Consensus consensus = w.op->consensus();
  for (auto r : consensus.relays()) {
    r.flags |= dir::kFlagGuard;
    consensus.add(r);
  }
  w.op->set_consensus(consensus);

  auto ctl = w.controller();
  std::optional<std::string> reply;
  ctl->get_info("entry-guards", [&](std::string r) { reply = std::move(r); });
  w.loop.run_while_waiting_for([&] { return reply.has_value(); },
                               Duration::seconds(10));
  ASSERT_TRUE(reply.has_value());
  EXPECT_NE(reply->find("entry-guards="), std::string::npos);
  for (const auto& fp : w.op->guard_set())
    EXPECT_NE(reply->find(fp.hex()), std::string::npos);
}

}  // namespace
}  // namespace ting::ctrl

namespace ting::dir {
namespace {

TEST(AuthorityTtlTest, StaleDescriptorsExpireUnlessRepublished) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 66);
  const simnet::HostId ah = net.add_host(IpAddr(10, 9, 0, 1), {50.0, 8.0});
  const simnet::HostId fresh_host = net.add_host(IpAddr(10, 9, 0, 2), {48.0, 2.0});
  const simnet::HostId stale_host = net.add_host(IpAddr(10, 9, 0, 3), {52.0, 13.0});

  Authority authority(net, ah);
  authority.set_descriptor_ttl(Duration::seconds(3600));

  tor::RelayConfig fresh_cfg;
  fresh_cfg.nickname = "fresh";
  tor::Relay fresh(net, fresh_host, fresh_cfg, 11);
  tor::RelayConfig stale_cfg;
  stale_cfg.nickname = "stale";
  tor::Relay stale(net, stale_host, stale_cfg, 12);

  // fresh republishes every 30 virtual minutes; stale publishes once.
  fresh.publish_periodically(authority.endpoint(), Duration::seconds(1800));
  stale.publish_to(authority.endpoint());
  loop.run_until(loop.now() + Duration::seconds(10));
  authority.expire_stale_descriptors();
  EXPECT_EQ(authority.consensus().size(), 2u);

  // Two hours later, only the republisher survives.
  loop.run_until(loop.now() + Duration::seconds(2 * 3600));
  authority.expire_stale_descriptors();
  EXPECT_NE(authority.consensus().find_nickname("fresh"), nullptr);
  EXPECT_EQ(authority.consensus().find_nickname("stale"), nullptr);
}

}  // namespace
}  // namespace ting::dir
