// Tests for the geo substrate: great-circle math, the embedded city table's
// coverage guarantees (which the PlanetLab-style testbed depends on), IP
// allocation invariants, and the geolocation error model.
#include <gtest/gtest.h>

#include <set>

#include "geo/cities.h"
#include "geo/geo.h"
#include "geo/geolocation.h"
#include "geo/ipalloc.h"

namespace ting::geo {
namespace {

TEST(GreatCircleTest, ZeroDistanceForSamePoint) {
  const GeoPoint p{48.86, 2.35};
  EXPECT_NEAR(great_circle_km(p, p), 0.0, 1e-9);
}

TEST(GreatCircleTest, KnownDistances) {
  const GeoPoint nyc{40.71, -74.01}, london{51.51, -0.13};
  const double d = great_circle_km(nyc, london);
  EXPECT_GT(d, 5400);  // actual ~5570 km
  EXPECT_LT(d, 5750);

  const GeoPoint sydney{-33.87, 151.21};
  const double d2 = great_circle_km(london, sydney);
  EXPECT_GT(d2, 16500);  // actual ~16990 km
  EXPECT_LT(d2, 17500);
}

TEST(GreatCircleTest, Symmetric) {
  const GeoPoint a{10, 20}, b{-30, 120};
  EXPECT_DOUBLE_EQ(great_circle_km(a, b), great_circle_km(b, a));
}

TEST(GreatCircleTest, TriangleInequalityHoldsForDistance) {
  // Geographic distance never violates the triangle inequality — the paper's
  // point is that *latencies* do (Fig 14); distances are the control.
  const GeoPoint a{40.71, -74.01}, b{51.51, -0.13}, c{35.68, 139.69};
  EXPECT_LE(great_circle_km(a, b),
            great_circle_km(a, c) + great_circle_km(c, b) + 1e-6);
}

TEST(GreatCircleTest, AntipodalNearHalfCircumference) {
  const GeoPoint p{0, 0}, q{0, 180};
  EXPECT_NEAR(great_circle_km(p, q), 6371.0 * 3.14159265, 30.0);
}

TEST(SpeedOfLightTest, RttBoundsRoundTrip) {
  // 1000 km at (2/3)c: one-way 5.0ms, RTT 10.0ms.
  EXPECT_NEAR(min_rtt_ms_for_distance(1000), 10.0, 0.1);
  EXPECT_NEAR(max_distance_km_for_rtt(min_rtt_ms_for_distance(1234)), 1234,
              1e-6);
}

TEST(CitiesTest, TablePopulatedAndValid) {
  const auto cities = all_cities();
  EXPECT_GE(cities.size(), 100u);
  for (const City& c : cities) {
    EXPECT_GE(c.lat, -90.0);
    EXPECT_LE(c.lat, 90.0);
    EXPECT_GE(c.lon, -180.0);
    EXPECT_LE(c.lon, 180.0);
    EXPECT_GT(c.tor_weight, 0.0);
    EXPECT_EQ(std::string(c.country_code).size(), 2u);
  }
}

TEST(CitiesTest, PaperTestbedCoverageAvailable) {
  // §4.1 requires: >= 6 EU countries, >= 9 US states, and at least one city
  // in Asia, South America, Australia, and the Middle East.
  std::set<std::string> eu_countries, us_states;
  for (const City& c : all_cities()) {
    if (c.region == Region::kEurope) eu_countries.insert(c.country_code);
    if (c.region == Region::kUS) us_states.insert(c.admin_region);
  }
  EXPECT_GE(eu_countries.size(), 6u);
  EXPECT_GE(us_states.size(), 9u);
  EXPECT_FALSE(cities_in_region(Region::kAsia).empty());
  EXPECT_FALSE(cities_in_region(Region::kSouthAmerica).empty());
  EXPECT_FALSE(cities_in_region(Region::kAustralia).empty());
  EXPECT_FALSE(cities_in_region(Region::kMiddleEast).empty());
}

TEST(CitiesTest, RegionAndCountryFilters) {
  for (const City* c : cities_in_region(Region::kAsia))
    EXPECT_EQ(static_cast<int>(c->region), static_cast<int>(Region::kAsia));
  const auto de = cities_in_country("DE");
  EXPECT_GE(de.size(), 2u);
  for (const City* c : de) EXPECT_STREQ(c->country_code, "DE");
}

TEST(CitiesTest, TorWeightedSamplingFavoursUSAndEurope) {
  Rng rng(7);
  int us_eu = 0;
  const int kTrials = 5000;
  for (int i = 0; i < kTrials; ++i) {
    const City& c = sample_city_tor_weighted(rng);
    if (c.region == Region::kUS || c.region == Region::kEurope) ++us_eu;
  }
  // The real Tor network concentrates in the US and Europe; the sampler
  // should reflect that strongly.
  EXPECT_GT(static_cast<double>(us_eu) / kTrials, 0.75);
}

TEST(CitiesTest, JitterStaysNearby) {
  Rng rng(8);
  const GeoPoint base{48.0, 11.0};
  for (int i = 0; i < 200; ++i) {
    const GeoPoint p = jitter_location(base, 30.0, rng);
    EXPECT_LT(great_circle_km(base, p), 80.0);
  }
}

TEST(IpAllocTest, AddressesAreUnique) {
  IpAllocator alloc(3);
  std::set<IpAddr> seen;
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(seen.insert(alloc.allocate("DE", HostKind::kResidential)).second);
    EXPECT_TRUE(seen.insert(alloc.allocate("US", HostKind::kDatacenter)).second);
  }
  EXPECT_EQ(alloc.allocated(), 1000u);
}

TEST(IpAllocTest, ResidentialSpreadsAcrossSlash24s) {
  IpAllocator alloc(4);
  std::set<std::uint32_t> nets;
  for (int i = 0; i < 100; ++i)
    nets.insert(alloc.allocate("FR", HostKind::kResidential).slash24());
  EXPECT_EQ(nets.size(), 100u);  // one host per /24
}

TEST(IpAllocTest, DatacenterPartiallyPacksSlash24s) {
  // ~75% of datacenter relays sit alone in a /24; ~25% pack into big
  // provider ranges, so the /24-to-host ratio lands well below 1 but far
  // above a fully-packed floor.
  IpAllocator alloc(5);
  std::set<std::uint32_t> nets;
  const int kHosts = 400;
  for (int i = 0; i < kHosts; ++i)
    nets.insert(alloc.allocate("NL", HostKind::kDatacenter).slash24());
  EXPECT_LT(nets.size(), static_cast<std::size_t>(kHosts));
  EXPECT_GT(nets.size(), static_cast<std::size_t>(kHosts) / 2);
}

TEST(IpAllocTest, CountriesGetDistinctSlash16Space) {
  IpAllocator alloc(6);
  const IpAddr de = alloc.allocate("DE", HostKind::kResidential);
  const IpAddr us = alloc.allocate("US", HostKind::kResidential);
  EXPECT_NE(de.slash16(), us.slash16());
}

TEST(IpAddrTest, FormattingAndParsing) {
  const IpAddr a(192, 168, 1, 20);
  EXPECT_EQ(a.str(), "192.168.1.20");
  EXPECT_EQ(IpAddr::parse("192.168.1.20"), a);
  EXPECT_FALSE(IpAddr::parse("1.2.3").has_value());
  EXPECT_FALSE(IpAddr::parse("1.2.3.999").has_value());
  EXPECT_FALSE(IpAddr::parse("a.b.c.d").has_value());
  EXPECT_EQ(a.slash24(), IpAddr(192, 168, 1, 77).slash24());
  EXPECT_NE(a.slash24(), IpAddr(192, 168, 2, 20).slash24());
  EXPECT_EQ(a.slash16(), IpAddr(192, 168, 200, 1).slash16());
}

TEST(GeolocationTest, LookupIsDeterministicAndClose) {
  GeolocationService svc(GeolocationConfig{.typical_error_km = 20.0,
                                           .gross_error_rate = 0.0,
                                           .seed = 11});
  const GeoPoint truth{52.52, 13.40};
  const IpAddr ip(10, 0, 0, 1);
  svc.register_host(ip, truth);
  const auto a = svc.lookup(ip);
  const auto b = svc.lookup(ip);
  ASSERT_TRUE(a.has_value());
  EXPECT_EQ(a->lat, b->lat);
  EXPECT_LT(great_circle_km(truth, *a), 200.0);
  EXPECT_EQ(svc.ground_truth(ip)->lat, truth.lat);
}

TEST(GeolocationTest, UnknownAddressReturnsNullopt) {
  GeolocationService svc;
  EXPECT_FALSE(svc.lookup(IpAddr(1, 2, 3, 4)).has_value());
}

TEST(GeolocationTest, GrossErrorsOccurAtConfiguredRate) {
  GeolocationService svc(GeolocationConfig{.typical_error_km = 10.0,
                                           .gross_error_rate = 0.2,
                                           .seed = 12});
  const GeoPoint truth{40.71, -74.01};  // NYC
  int gross = 0;
  const int kHosts = 500;
  for (int i = 0; i < kHosts; ++i) {
    const IpAddr ip(static_cast<std::uint32_t>(0x0a000000 + i));
    svc.register_host(ip, truth);
    if (great_circle_km(truth, *svc.lookup(ip)) > 500.0) ++gross;
  }
  EXPECT_GT(gross, kHosts / 10);
  EXPECT_LT(gross, kHosts / 2);
}

}  // namespace
}  // namespace ting::geo
