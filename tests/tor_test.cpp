// Integration tests for the Tor stack: circuit construction across real
// relays over the simulated network, onion-layer correctness, client
// policies (no one-hop, no repeats), exit policies, stream echo through
// circuits, default path selection, and teardown.
#include <gtest/gtest.h>

#include <set>

#include "dir/consensus.h"
#include "echo/echo.h"
#include "simnet/network.h"
#include "tor/onion_proxy.h"
#include "tor/relay.h"

namespace ting::tor {
namespace {

simnet::LatencyConfig quiet_net() {
  simnet::LatencyConfig c;
  c.jitter_mean_ms = 0.01;
  c.jitter_spike_prob = 0;
  return c;
}

/// A small world: N relays at distinct locations, an OP, and an echo server.
struct TorWorld {
  simnet::EventLoop loop;
  simnet::Network net;
  std::vector<std::unique_ptr<Relay>> relays;
  std::unique_ptr<OnionProxy> op;
  std::unique_ptr<echo::EchoServer> echo_server;
  simnet::HostId op_host = 0;
  simnet::HostId echo_host = 0;

  explicit TorWorld(int n_relays, OnionProxyConfig op_config = {})
      : net(loop, quiet_net(), 21) {
    dir::Consensus consensus;
    for (int i = 0; i < n_relays; ++i) {
      // Distinct /16 per relay: default path selection requires it.
      const simnet::HostId h = net.add_host(
          IpAddr(10, static_cast<std::uint8_t>(10 + i), 0, 1),
          {30.0 + 2.0 * i, -90.0 + 3.0 * i});
      RelayConfig rc;
      rc.nickname = "relay" + std::to_string(i);
      rc.flags |= dir::kFlagGuard;
      rc.exit_policy = dir::ExitPolicy::accept_all();
      rc.base_forward_ms = 0.3;
      rc.queue_mean_ms = 0.2;
      relays.push_back(
          std::make_unique<Relay>(net, h, rc, 1000 + static_cast<std::uint64_t>(i)));
      consensus.add(relays.back()->descriptor());
    }
    op_host = net.add_host(IpAddr(10, 2, 0, 1), {40.0, -100.0});
    echo_host = net.add_host(IpAddr(10, 2, 0, 2), {40.0, -100.01});
    op = std::make_unique<OnionProxy>(net, op_host, op_config, 77);
    op->set_consensus(consensus);
    echo_server = std::make_unique<echo::EchoServer>(net, echo_host);
  }

  dir::Fingerprint fp(std::size_t i) const {
    return relays.at(i)->fingerprint();
  }

  /// Build a circuit and pump the loop until built/failed. Returns handle.
  CircuitHandle build(const std::vector<dir::Fingerprint>& path,
                      bool expect_ok = true) {
    bool done = false, ok = false;
    std::string error;
    const CircuitHandle h = op->build_circuit(
        path,
        [&](CircuitHandle) { done = ok = true; },
        [&](const std::string& e) {
          done = true;
          error = e;
        });
    loop.run_while_waiting_for([&] { return done; }, Duration::seconds(60));
    EXPECT_TRUE(done) << "circuit build did not finish";
    EXPECT_EQ(ok, expect_ok) << error;
    return h;
  }
};

TEST(TorStackTest, BuildsTwoHopCircuit) {
  TorWorld w(3);
  const CircuitHandle h = w.build({w.fp(0), w.fp(1)});
  EXPECT_EQ(w.op->circuit_state(h), CircuitState::kBuilt);
  EXPECT_EQ(w.relays[0]->open_circuits(), 1u);
  EXPECT_EQ(w.relays[1]->open_circuits(), 1u);
  EXPECT_EQ(w.relays[2]->open_circuits(), 0u);
}

TEST(TorStackTest, BuildsFourHopCircuit) {
  TorWorld w(5);
  const CircuitHandle h = w.build({w.fp(0), w.fp(1), w.fp(2), w.fp(3)});
  EXPECT_EQ(w.op->circuit_state(h), CircuitState::kBuilt);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(w.relays[static_cast<std::size_t>(i)]->open_circuits(), 1u);
}

TEST(TorStackTest, OneHopCircuitRejected) {
  TorWorld w(2);
  const CircuitHandle h = w.build({w.fp(0)}, /*expect_ok=*/false);
  EXPECT_EQ(w.op->circuit_state(h), CircuitState::kFailed);
}

TEST(TorStackTest, RepeatedRelayRejected) {
  TorWorld w(2);
  const CircuitHandle h =
      w.build({w.fp(0), w.fp(1), w.fp(0)}, /*expect_ok=*/false);
  EXPECT_EQ(w.op->circuit_state(h), CircuitState::kFailed);
}

TEST(TorStackTest, UnknownRelayRejected) {
  TorWorld w(2);
  crypto::X25519Key bogus;
  bogus.fill(0xee);
  const CircuitHandle h = w.build(
      {w.fp(0), dir::Fingerprint::of_identity(bogus)}, /*expect_ok=*/false);
  EXPECT_EQ(w.op->circuit_state(h), CircuitState::kFailed);
}

TEST(TorStackTest, EchoThroughThreeHops) {
  TorWorld w(3);
  const CircuitHandle h = w.build({w.fp(0), w.fp(1), w.fp(2)});

  bool connected = false;
  auto stream = w.op->open_stream(
      h, w.echo_server->endpoint(), [&] { connected = true; },
      [](const std::string& e) { FAIL() << e; });
  w.loop.run_while_waiting_for([&] { return connected; },
                               Duration::seconds(60));
  ASSERT_TRUE(connected);

  std::string reply;
  stream->set_on_message(
      [&](Bytes data) { reply.assign(data.begin(), data.end()); });
  stream->send(Bytes{'t', 'i', 'n', 'g'});
  w.loop.run_while_waiting_for([&] { return !reply.empty(); },
                               Duration::seconds(60));
  EXPECT_EQ(reply, "ting");
  EXPECT_EQ(w.echo_server->echoes(), 1u);
}

TEST(TorStackTest, LargeStreamPayloadIsChunkedAndReassembled) {
  TorWorld w(3);
  const CircuitHandle h = w.build({w.fp(0), w.fp(1), w.fp(2)});
  bool connected = false;
  auto stream = w.op->open_stream(h, w.echo_server->endpoint(),
                                  [&] { connected = true; }, {});
  w.loop.run_while_waiting_for([&] { return connected; },
                               Duration::seconds(60));
  ASSERT_TRUE(connected);

  // 2000 bytes > 4 relay cells; echo returns them in order.
  Bytes big(2000);
  for (std::size_t i = 0; i < big.size(); ++i)
    big[i] = static_cast<std::uint8_t>(i * 7);
  Bytes received;
  stream->set_on_message([&](Bytes data) {
    received.insert(received.end(), data.begin(), data.end());
  });
  stream->send(big);
  w.loop.run_while_waiting_for([&] { return received.size() >= big.size(); },
                               Duration::seconds(60));
  EXPECT_EQ(received, big);
}

TEST(TorStackTest, ExitPolicyBlocksDisallowedTarget) {
  TorWorld w(3);
  // Make relay 2 reject everything; it is the exit on this circuit.
  // (Need a fresh world where relay 2's policy is restrictive.)
  simnet::EventLoop loop;
  simnet::Network net(loop, quiet_net(), 31);
  dir::Consensus consensus;
  std::vector<std::unique_ptr<Relay>> relays;
  for (int i = 0; i < 3; ++i) {
    const simnet::HostId h = net.add_host(
        IpAddr(10, 1, static_cast<std::uint8_t>(i), 1), {30.0 + i, -90.0});
    RelayConfig rc;
    rc.nickname = "r" + std::to_string(i);
    rc.exit_policy = (i == 2) ? dir::ExitPolicy::accept_only({IpAddr(1, 1, 1, 1)})
                              : dir::ExitPolicy::accept_all();
    relays.push_back(std::make_unique<Relay>(net, h, rc, 500 + static_cast<std::uint64_t>(i)));
    consensus.add(relays.back()->descriptor());
  }
  const simnet::HostId op_host = net.add_host(IpAddr(10, 2, 0, 1), {40, -100});
  const simnet::HostId echo_host = net.add_host(IpAddr(10, 2, 0, 2), {40, -100.01});
  OnionProxy op(net, op_host, {}, 9);
  op.set_consensus(consensus);
  echo::EchoServer server(net, echo_host);

  bool built = false;
  const CircuitHandle h = op.build_circuit(
      {relays[0]->fingerprint(), relays[1]->fingerprint(),
       relays[2]->fingerprint()},
      [&](CircuitHandle) { built = true; }, {});
  loop.run_while_waiting_for([&] { return built; }, Duration::seconds(60));
  ASSERT_TRUE(built);

  bool failed = false;
  op.open_stream(h, server.endpoint(), [] { FAIL() << "policy ignored"; },
                 [&](const std::string&) { failed = true; });
  loop.run_while_waiting_for([&] { return failed; }, Duration::seconds(60));
  EXPECT_TRUE(failed);
}

TEST(TorStackTest, CloseCircuitTearsDownRelays) {
  TorWorld w(3);
  const CircuitHandle h = w.build({w.fp(0), w.fp(1), w.fp(2)});
  w.op->close_circuit(h);
  w.loop.run();
  EXPECT_EQ(w.op->circuit_state(h), CircuitState::kClosed);
  for (int i = 0; i < 3; ++i)
    EXPECT_EQ(w.relays[static_cast<std::size_t>(i)]->open_circuits(), 0u)
        << "relay " << i;
}

TEST(TorStackTest, ConcurrentCircuitsOnSameRelays) {
  TorWorld w(3);
  const CircuitHandle h1 = w.build({w.fp(0), w.fp(1)});
  const CircuitHandle h2 = w.build({w.fp(0), w.fp(1)});
  const CircuitHandle h3 = w.build({w.fp(1), w.fp(0)});
  EXPECT_EQ(w.op->circuit_state(h1), CircuitState::kBuilt);
  EXPECT_EQ(w.op->circuit_state(h2), CircuitState::kBuilt);
  EXPECT_EQ(w.op->circuit_state(h3), CircuitState::kBuilt);
  EXPECT_EQ(w.relays[0]->open_circuits(), 3u);
}

TEST(TorStackTest, CircuitRttReflectsPathLatency) {
  // The end-to-end stream RTT through (r0, r1) should be close to the
  // ground-truth sum of link RTTs plus forwarding delays — the identity
  // Ting's Eq. (1) is built on.
  TorWorld w(2);
  const CircuitHandle h = w.build({w.fp(0), w.fp(1)});
  bool connected = false;
  auto stream = w.op->open_stream(h, w.echo_server->endpoint(),
                                  [&] { connected = true; }, {});
  w.loop.run_while_waiting_for([&] { return connected; },
                               Duration::seconds(60));
  ASSERT_TRUE(connected);

  std::optional<Duration> rtt;
  echo::measure_stream_rtt(w.loop, stream,
                           [&](std::optional<Duration> r) { rtt = r; });
  w.loop.run_while_waiting_for([&] { return rtt.has_value(); },
                               Duration::seconds(60));
  ASSERT_TRUE(rtt.has_value());

  const auto& lat = w.net.latency();
  const simnet::HostId r0 = w.relays[0]->host(), r1 = w.relays[1]->host();
  const double path_ms = lat.rtt(w.op_host, r0, simnet::Protocol::kTor).ms() +
                         lat.rtt(r0, r1, simnet::Protocol::kTor).ms() +
                         lat.rtt(r1, w.echo_host, simnet::Protocol::kTcp).ms();
  EXPECT_GT(rtt->ms(), path_ms);              // forwarding delays add
  EXPECT_LT(rtt->ms(), path_ms + 25.0);       // but not absurdly
}

TEST(TorStackTest, DefaultPathSelectionRespectsConstraints) {
  TorWorld w(8);
  for (int trial = 0; trial < 30; ++trial) {
    const auto path =
        w.op->pick_default_path(w.echo_server->endpoint(), 3);
    ASSERT_TRUE(path.has_value());
    EXPECT_EQ(path->size(), 3u);
    std::set<dir::Fingerprint> uniq(path->begin(), path->end());
    EXPECT_EQ(uniq.size(), 3u);
    // Distinct /16s.
    std::set<std::uint32_t> nets;
    for (const auto& fp : *path) {
      const auto* d = w.op->consensus().find(fp);
      ASSERT_NE(d, nullptr);
      EXPECT_TRUE(nets.insert(d->address.slash16()).second);
    }
    // Exit allows the target.
    const auto* exit_desc = w.op->consensus().find(path->back());
    EXPECT_TRUE(exit_desc->exit_policy.allows(w.echo_server->endpoint().ip,
                                              w.echo_server->endpoint().port));
  }
}

TEST(TorStackTest, EventsEmittedDuringBuildAndStreams) {
  TorWorld w(3);
  std::vector<std::string> events;
  w.op->set_event_sink([&](std::string e) { events.push_back(std::move(e)); });
  const CircuitHandle h = w.build({w.fp(0), w.fp(1)});
  bool connected = false;
  auto stream = w.op->open_stream(h, w.echo_server->endpoint(),
                                  [&] { connected = true; }, {});
  w.loop.run_while_waiting_for([&] { return connected; },
                               Duration::seconds(60));
  bool saw_launched = false, saw_built = false, saw_stream = false;
  for (const auto& e : events) {
    if (starts_with(e, "CIRC " + std::to_string(h) + " LAUNCHED")) saw_launched = true;
    if (starts_with(e, "CIRC " + std::to_string(h) + " BUILT")) saw_built = true;
    if (starts_with(e, "STREAM") && e.find("SUCCEEDED") != std::string::npos)
      saw_stream = true;
  }
  EXPECT_TRUE(saw_launched);
  EXPECT_TRUE(saw_built);
  EXPECT_TRUE(saw_stream);
}

TEST(TorStackTest, SocksAutoAttachMode) {
  TorWorld w(6);
  // App connects to the OP's SOCKS port and asks for the echo server.
  std::string reply;
  bool ready = false;
  simnet::ConnPtr app;
  w.net.connect(
      w.echo_host /* any host can be the app's */,
      Endpoint{w.net.ip_of(w.op_host), w.op->config().socks_port},
      simnet::Protocol::kTcp, [&](simnet::ConnPtr conn) {
        app = conn;
        conn->set_on_message([&](Bytes msg) {
          const std::string s(msg.begin(), msg.end());
          if (s == "OK") {
            ready = true;
            return;
          }
          reply = s;
        });
        const std::string req =
            "CONNECT " + w.echo_server->endpoint().str();
        conn->send(Bytes(req.begin(), req.end()));
      });
  w.loop.run_while_waiting_for([&] { return ready; }, Duration::seconds(120));
  ASSERT_TRUE(ready);
  app->send(Bytes{'v', 'i', 'a', '-', 's', 'o', 'c', 'k', 's'});
  w.loop.run_while_waiting_for([&] { return !reply.empty(); },
                               Duration::seconds(120));
  EXPECT_EQ(reply, "via-socks");
}

TEST(TorStackTest, SocksLeaveUnattachedWaitsForAttach) {
  OnionProxyConfig opc;
  opc.leave_streams_unattached = true;
  TorWorld w(3, opc);
  const CircuitHandle h = w.build({w.fp(0), w.fp(1), w.fp(2)});

  bool ready = false;
  w.net.connect(
      w.echo_host,
      Endpoint{w.net.ip_of(w.op_host), w.op->config().socks_port},
      simnet::Protocol::kTcp, [&](simnet::ConnPtr conn) {
        conn->set_on_message([&](Bytes msg) {
          if (std::string(msg.begin(), msg.end()) == "OK") ready = true;
        });
        const std::string req = "CONNECT " + w.echo_server->endpoint().str();
        conn->send(Bytes(req.begin(), req.end()));
      });
  // Stream must appear as unattached, not auto-connect.
  w.loop.run_while_waiting_for(
      [&] { return !w.op->unattached_streams().empty(); },
      Duration::seconds(60));
  ASSERT_EQ(w.op->unattached_streams().size(), 1u);
  EXPECT_FALSE(ready);

  const std::uint16_t sid = w.op->unattached_streams()[0]->id();
  EXPECT_TRUE(w.op->attach_stream(sid, h));
  w.loop.run_while_waiting_for([&] { return ready; }, Duration::seconds(60));
  EXPECT_TRUE(ready);
  EXPECT_FALSE(w.op->attach_stream(sid, h));  // no longer NEW
}

TEST(TorStackTest, RelayForwardingDelayHasConfiguredFloor) {
  TorWorld w(2);
  const CircuitHandle h = w.build({w.fp(0), w.fp(1)});
  bool connected = false;
  auto stream = w.op->open_stream(h, w.echo_server->endpoint(),
                                  [&] { connected = true; }, {});
  w.loop.run_while_waiting_for([&] { return connected; },
                               Duration::seconds(60));

  // Many echo RTT samples: the minimum is bounded below by path RTT plus
  // 2 relays × 2 directions × base forwarding cost.
  double best_ms = 1e18;
  for (int i = 0; i < 100; ++i) {
    std::optional<Duration> rtt;
    echo::measure_stream_rtt(w.loop, stream,
                             [&](std::optional<Duration> r) { rtt = r; });
    w.loop.run_while_waiting_for([&] { return rtt.has_value(); },
                                 Duration::seconds(60));
    ASSERT_TRUE(rtt.has_value());
    best_ms = std::min(best_ms, rtt->ms());
  }
  const auto& lat = w.net.latency();
  const simnet::HostId r0 = w.relays[0]->host(), r1 = w.relays[1]->host();
  const double path_ms = lat.rtt(w.op_host, r0, simnet::Protocol::kTor).ms() +
                         lat.rtt(r0, r1, simnet::Protocol::kTor).ms() +
                         lat.rtt(r1, w.echo_host, simnet::Protocol::kTcp).ms();
  const double floor_ms =
      path_ms + 2 * 2 * w.relays[0]->config().base_forward_ms;
  EXPECT_GE(best_ms, floor_ms - 0.05);
  EXPECT_LE(best_ms, floor_ms + 5.0);
}

}  // namespace
}  // namespace ting::tor

namespace ting::tor {
namespace {

TEST(GuardSelectionTest, GuardSetIsSmallPersistentAndGuardFlagged) {
  TorWorld w(10);
  const auto& guards = w.op->guard_set();
  EXPECT_EQ(guards.size(), OnionProxy::kGuardSetSize);
  for (const auto& fp : guards) {
    const auto* d = w.op->consensus().find(fp);
    ASSERT_NE(d, nullptr);
    EXPECT_TRUE(d->has_flag(dir::kFlagGuard));
  }
  // Stable across calls.
  const auto again = w.op->guard_set();
  EXPECT_EQ(guards, again);
}

TEST(GuardSelectionTest, DefaultPathsUseOnlyGuardEntries) {
  TorWorld w(12);
  const auto guards = w.op->guard_set();
  const std::set<dir::Fingerprint> guard_set(guards.begin(), guards.end());
  for (int trial = 0; trial < 40; ++trial) {
    const auto path = w.op->pick_default_path(w.echo_server->endpoint(), 3);
    ASSERT_TRUE(path.has_value());
    EXPECT_TRUE(guard_set.contains(path->front()))
        << "entry " << path->front().short_name() << " not a guard";
  }
}

TEST(GuardSelectionTest, DepartedGuardIsReplaced) {
  TorWorld w(10);
  auto guards = w.op->guard_set();
  ASSERT_EQ(guards.size(), OnionProxy::kGuardSetSize);
  // The first guard vanishes from the consensus.
  dir::Consensus trimmed = w.op->consensus();
  trimmed.remove(guards[0]);
  w.op->set_consensus(trimmed);
  const auto refreshed = w.op->guard_set();
  EXPECT_EQ(refreshed.size(), OnionProxy::kGuardSetSize);
  for (const auto& fp : refreshed) EXPECT_NE(fp, guards[0]);
  // The surviving two guards are retained.
  EXPECT_EQ(refreshed[0], guards[1]);
  EXPECT_EQ(refreshed[1], guards[2]);
}

}  // namespace
}  // namespace ting::tor
