// End-to-end tests for the continuous scan daemon: coverage convergence
// under consensus churn, delta-only follow-up epochs, byte-identical
// crash/resume, shard-count invariance, and resume safety rails.
#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>

#include "scenario/daemon_world.h"
#include "ting/daemon.h"
#include "ting/sparse_matrix.h"
#include "util/assert.h"

namespace ting::meas {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing file: " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

/// Small, fast world: 10 relays, few samples, no protocol differentials.
scenario::DaemonWorldOptions small_world(std::uint64_t seed, double churn) {
  scenario::DaemonWorldOptions o;
  o.relays = 10;
  o.testbed.seed = seed;
  o.testbed.differential_fraction = 0;
  o.ting.samples = 8;
  o.churn.seed = seed + 1;
  o.churn.churn_rate = churn;
  o.churn.rejoin_rate = 0.5;
  return o;
}

DaemonOptions daemon_opts(const std::string& out, std::size_t epochs) {
  DaemonOptions d;
  d.epochs = epochs;
  d.out = out;
  d.seed = 5;
  d.config_tag = "daemon-test";
  d.coverage_target = 0.99;
  return d;
}

TEST(ScanDaemonTest, ConvergesUnderChurnAndScansOnlyDeltas) {
  scenario::TestbedDaemonEnvironment env(small_world(11, 0.1));
  const std::string out = ::testing::TempDir() + "/daemon_churn.tingmx";
  ScanDaemon daemon(env, daemon_opts(out, 3));
  const DaemonReport report = daemon.run();

  ASSERT_EQ(report.epochs.size(), 3u);
  EXPECT_FALSE(report.interrupted);
  EXPECT_TRUE(report.converged);
  EXPECT_DOUBLE_EQ(report.final_coverage, 1.0);
  for (const EpochStats& e : report.epochs) {
    EXPECT_EQ(e.scan.failed, 0u);
    EXPECT_DOUBLE_EQ(e.coverage.coverage(), 1.0);
  }

  // Epoch 0 measures the full mesh; later epochs only the churn delta.
  const EpochStats& first = report.epochs.front();
  EXPECT_EQ(first.plan.new_pairs, first.nodes * (first.nodes - 1) / 2);
  for (std::size_t e = 1; e < report.epochs.size(); ++e) {
    const EpochStats& s = report.epochs[e];
    EXPECT_GT(s.plan.fresh_pairs, 0u);
    EXPECT_LT(s.scan.pairs_total, s.nodes * (s.nodes - 1) / 2)
        << "epoch " << e << " rescanned the full mesh";
    // Everything planned is new (TTL is a week; nothing expires in hours).
    EXPECT_EQ(s.plan.expired_pairs, 0u);
  }

  // The on-disk artifact matches the in-memory matrix bit for bit.
  EXPECT_EQ(read_file(out), daemon.matrix().to_bin());
}

TEST(ScanDaemonTest, ZeroChurnFollowUpEpochsPlanNothing) {
  scenario::TestbedDaemonEnvironment env(small_world(12, 0.0));
  const std::string out = ::testing::TempDir() + "/daemon_static.tingmx";
  ScanDaemon daemon(env, daemon_opts(out, 3));
  const DaemonReport report = daemon.run();

  ASSERT_EQ(report.epochs.size(), 3u);
  EXPECT_TRUE(report.converged);
  for (std::size_t e = 1; e < report.epochs.size(); ++e) {
    EXPECT_TRUE(report.epochs[e].plan.pairs.empty());
    EXPECT_EQ(report.epochs[e].scan.measured, 0u);
  }
}

TEST(ScanDaemonTest, BudgetSpreadsInitialMeshAcrossEpochs) {
  scenario::TestbedDaemonEnvironment env(small_world(13, 0.0));
  const std::string out = ::testing::TempDir() + "/daemon_budget.tingmx";
  DaemonOptions opts = daemon_opts(out, 4);
  opts.budget = 15;  // 10 relays = 45 pairs -> exactly 3 epochs to cover
  ScanDaemon daemon(env, opts);
  const DaemonReport report = daemon.run();

  ASSERT_EQ(report.epochs.size(), 4u);
  EXPECT_EQ(report.epochs[0].scan.pairs_total, 15u);
  EXPECT_EQ(report.epochs[0].plan.dropped_over_budget, 30u);
  EXPECT_EQ(report.epochs[1].scan.pairs_total, 15u);
  EXPECT_EQ(report.epochs[2].scan.pairs_total, 15u);
  EXPECT_TRUE(report.epochs[3].plan.pairs.empty());
  EXPECT_DOUBLE_EQ(report.epochs[2].coverage.coverage(), 1.0);
  EXPECT_TRUE(report.converged);
}

TEST(ScanDaemonTest, StopAndResumeIsByteIdentical) {
  const double churn = 0.1;
  const std::string ref_out = ::testing::TempDir() + "/daemon_ref.tingmx";
  const std::string cut_out = ::testing::TempDir() + "/daemon_cut.tingmx";

  // Reference: two epochs, uninterrupted.
  {
    scenario::TestbedDaemonEnvironment env(small_world(21, churn));
    ScanDaemon daemon(env, daemon_opts(ref_out, 2));
    const DaemonReport r = daemon.run();
    EXPECT_FALSE(r.interrupted);
  }

  // Interrupted run: raise the stop flag mid-epoch 0 via the progress hook.
  {
    scenario::TestbedDaemonEnvironment env(small_world(21, churn));
    std::atomic<bool> stop{false};
    DaemonOptions opts = daemon_opts(cut_out, 2);
    opts.stop = &stop;
    ScanDaemon daemon(env, opts);
    std::size_t results = 0;
    const DaemonReport r = daemon.run(
        {}, [&](std::size_t, std::size_t, const PairResult&) {
          if (++results == 8) stop.store(true);
        });
    EXPECT_TRUE(r.interrupted);
    ASSERT_EQ(r.epochs.size(), 1u);
    EXPECT_TRUE(r.epochs[0].scan.interrupted);
    EXPECT_GT(r.epochs[0].scan.interrupted_pairs, 0u);
  }

  // Resume in a fresh process (fresh environment object): the journal
  // replays epoch 0's completed pairs, the engine re-measures the rest,
  // and the final artifacts equal the uninterrupted run's byte for byte.
  {
    scenario::TestbedDaemonEnvironment env(small_world(21, churn));
    DaemonOptions opts = daemon_opts(cut_out, 2);
    opts.resume = true;
    ScanDaemon daemon(env, opts);
    const DaemonReport r = daemon.run();
    EXPECT_FALSE(r.interrupted);
    EXPECT_EQ(r.epochs_completed, 2u);
    EXPECT_GT(r.epochs.front().journal_recovered, 0u);
  }

  EXPECT_EQ(read_file(cut_out), read_file(ref_out));
  EXPECT_EQ(read_file(cut_out + ".halves"), read_file(ref_out + ".halves"));
}

TEST(ScanDaemonTest, ResumingAFinishedStoreIsANoOp) {
  scenario::TestbedDaemonEnvironment env(small_world(31, 0.05));
  const std::string out = ::testing::TempDir() + "/daemon_done.tingmx";
  {
    ScanDaemon daemon(env, daemon_opts(out, 2));
    EXPECT_TRUE(daemon.run().converged);
  }
  const std::string bytes = read_file(out);
  {
    scenario::TestbedDaemonEnvironment env2(small_world(31, 0.05));
    DaemonOptions opts = daemon_opts(out, 2);
    opts.resume = true;
    ScanDaemon daemon(env2, opts);
    const DaemonReport r = daemon.run();
    EXPECT_TRUE(r.epochs.empty());  // nothing left to run
    EXPECT_EQ(r.epochs_completed, 2u);
    EXPECT_TRUE(r.converged);
  }
  EXPECT_EQ(read_file(out), bytes);
}

TEST(ScanDaemonTest, ShardCountDoesNotChangeTheMatrix) {
  const std::string out1 = ::testing::TempDir() + "/daemon_s1.tingmx";
  const std::string out2 = ::testing::TempDir() + "/daemon_s2.tingmx";
  {
    scenario::TestbedDaemonEnvironment env(small_world(41, 0.1));
    ScanDaemon daemon(env, daemon_opts(out1, 2));
    EXPECT_FALSE(daemon.run().interrupted);
  }
  {
    scenario::DaemonWorldOptions wo = small_world(41, 0.1);
    wo.shards = 2;
    scenario::TestbedDaemonEnvironment env(wo);
    ScanDaemon daemon(env, daemon_opts(out2, 2));
    EXPECT_FALSE(daemon.run().interrupted);
  }
  EXPECT_EQ(read_file(out1), read_file(out2));
}

TEST(ScanDaemonTest, IncrementalPlannerOnOrOffIsByteIdentical) {
  // The incremental planner is a performance path, not a policy change: the
  // daemon must produce the same artifacts with it on or off — including
  // across a crash/resume, where a fresh process starts with an unprimed
  // planner mid-sequence.
  const double churn = 0.1;
  const std::string inc_out = ::testing::TempDir() + "/daemon_inc.tingmx";
  const std::string full_out = ::testing::TempDir() + "/daemon_full.tingmx";
  {
    scenario::TestbedDaemonEnvironment env(small_world(61, churn));
    DaemonOptions opts = daemon_opts(inc_out, 3);
    opts.incremental_planner = true;
    ScanDaemon daemon(env, opts);
    EXPECT_FALSE(daemon.run().interrupted);
  }
  {
    scenario::TestbedDaemonEnvironment env(small_world(61, churn));
    DaemonOptions opts = daemon_opts(full_out, 3);
    opts.incremental_planner = false;
    ScanDaemon daemon(env, opts);
    EXPECT_FALSE(daemon.run().interrupted);
  }
  EXPECT_EQ(read_file(inc_out), read_file(full_out));
  EXPECT_EQ(read_file(inc_out + ".halves"), read_file(full_out + ".halves"));

  // Interrupt an incremental-planner run mid-epoch, resume it (unprimed
  // planner against the persisted matrix), and compare again.
  const std::string cut_out = ::testing::TempDir() + "/daemon_inc_cut.tingmx";
  {
    scenario::TestbedDaemonEnvironment env(small_world(61, churn));
    std::atomic<bool> stop{false};
    DaemonOptions opts = daemon_opts(cut_out, 3);
    opts.incremental_planner = true;
    opts.stop = &stop;
    ScanDaemon daemon(env, opts);
    std::size_t results = 0;
    const DaemonReport r = daemon.run(
        {}, [&](std::size_t, std::size_t, const PairResult&) {
          if (++results == 8) stop.store(true);
        });
    EXPECT_TRUE(r.interrupted);
  }
  {
    scenario::TestbedDaemonEnvironment env(small_world(61, churn));
    DaemonOptions opts = daemon_opts(cut_out, 3);
    opts.incremental_planner = true;
    opts.resume = true;
    ScanDaemon daemon(env, opts);
    EXPECT_FALSE(daemon.run().interrupted);
  }
  EXPECT_EQ(read_file(cut_out), read_file(inc_out));
}

TEST(ScanDaemonTest, JournalOffStillResumesAtEpochGranularity) {
  // With the mid-epoch journal disabled the daemon still checkpoints the
  // store after every epoch, so a kill between epochs resumes losslessly —
  // an interrupted epoch just re-runs from its start.
  const double churn = 0.1;
  const std::string ref_out = ::testing::TempDir() + "/daemon_noj_ref.tingmx";
  const std::string cut_out = ::testing::TempDir() + "/daemon_noj_cut.tingmx";
  {
    scenario::TestbedDaemonEnvironment env(small_world(71, churn));
    DaemonOptions opts = daemon_opts(ref_out, 2);
    opts.journal = false;
    ScanDaemon daemon(env, opts);
    EXPECT_FALSE(daemon.run().interrupted);
  }
  {
    scenario::TestbedDaemonEnvironment env(small_world(71, churn));
    std::atomic<bool> stop{false};
    DaemonOptions opts = daemon_opts(cut_out, 2);
    opts.journal = false;
    opts.stop = &stop;
    ScanDaemon daemon(env, opts);
    std::size_t results = 0;
    const DaemonReport r = daemon.run(
        {}, [&](std::size_t, std::size_t, const PairResult&) {
          if (++results == 8) stop.store(true);
        });
    EXPECT_TRUE(r.interrupted);
    ASSERT_EQ(r.epochs.size(), 1u);
    EXPECT_EQ(r.epochs[0].journal_recovered, 0u);
  }
  {
    scenario::TestbedDaemonEnvironment env(small_world(71, churn));
    DaemonOptions opts = daemon_opts(cut_out, 2);
    opts.journal = false;
    opts.resume = true;
    ScanDaemon daemon(env, opts);
    const DaemonReport r = daemon.run();
    EXPECT_FALSE(r.interrupted);
    // No journal to replay — the whole epoch re-measures.
    EXPECT_EQ(r.epochs.front().journal_recovered, 0u);
  }
  EXPECT_EQ(read_file(cut_out), read_file(ref_out));
}

TEST(ScanDaemonTest, ReportsMatrixStoreFootprint) {
  scenario::TestbedDaemonEnvironment env(small_world(81, 0.0));
  const std::string out = ::testing::TempDir() + "/daemon_mem.tingmx";
  ScanDaemon daemon(env, daemon_opts(out, 2));
  const DaemonReport report = daemon.run();
  ASSERT_FALSE(report.epochs.empty());
  EXPECT_EQ(report.epochs.front().matrix_pairs, daemon.matrix().size());
  EXPECT_GT(report.epochs.front().matrix_bytes, 0u);
  EXPECT_EQ(report.matrix_pairs, daemon.matrix().size());
  EXPECT_EQ(report.matrix_bytes, daemon.matrix().memory_bytes());
}

TEST(ScanDaemonTest, ResumeGuardsAgainstForeignStores) {
  scenario::TestbedDaemonEnvironment env(small_world(51, 0.0));
  const std::string out = ::testing::TempDir() + "/daemon_guard.tingmx";
  {
    ScanDaemon daemon(env, daemon_opts(out, 1));
    daemon.run();
  }
  {
    // Different seed -> different epoch pair seeds; resuming would corrupt.
    DaemonOptions opts = daemon_opts(out, 2);
    opts.resume = true;
    opts.seed = 999;
    scenario::TestbedDaemonEnvironment env2(small_world(51, 0.0));
    ScanDaemon daemon(env2, opts);
    EXPECT_THROW(daemon.run(), CheckError);
  }
  {
    // Missing state file (fresh path) with --resume.
    DaemonOptions opts = daemon_opts(::testing::TempDir() + "/no_such.tingmx", 1);
    opts.resume = true;
    scenario::TestbedDaemonEnvironment env3(small_world(51, 0.0));
    ScanDaemon daemon(env3, opts);
    EXPECT_THROW(daemon.run(), CheckError);
  }
}

}  // namespace
}  // namespace ting::meas
