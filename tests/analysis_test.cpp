// Tests for the analysis applications: deanonymization strategies and their
// ordering (§5.1), TIV detection (§5.2.1), long-circuit statistics (§5.2.2),
// and coverage classification (§5.3).
#include <gtest/gtest.h>

#include <cmath>

#include "analysis/circuits.h"
#include "analysis/coverage.h"
#include "analysis/deanon.h"
#include "analysis/tiv.h"
#include "geo/cities.h"
#include "scenario/timeline.h"
#include "simnet/latency_model.h"
#include "util/stats.h"

namespace ting::analysis {
namespace {

dir::Fingerprint fp_of(std::uint32_t i) {
  crypto::X25519Key k{};
  k[0] = static_cast<std::uint8_t>(i);
  k[1] = static_cast<std::uint8_t>(i >> 8);
  return dir::Fingerprint::of_identity(k);
}

/// A synthetic all-pairs matrix from the simulator's latency model: hosts
/// placed like Tor relays (US/EU-heavy, global tail — the Fig 11 RTT
/// spread), with per-pair path inflation, i.e. what Ting would measure.
struct SyntheticWorld {
  std::vector<dir::Fingerprint> fps;
  meas::RttMatrix matrix;

  explicit SyntheticWorld(std::size_t n, std::uint64_t seed = 9) {
    simnet::LatencyConfig cfg;
    cfg.seed = seed;
    simnet::LatencyModel model(cfg);
    Rng rng(seed);
    std::vector<simnet::HostId> hosts;
    for (std::size_t i = 0; i < n; ++i) {
      const geo::City& c = geo::sample_city_tor_weighted(rng);
      hosts.push_back(
          model.add_host(geo::jitter_location({c.lat, c.lon}, 15.0, rng)));
      fps.push_back(fp_of(static_cast<std::uint32_t>(i)));
    }
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        matrix.set(fps[i], fps[j],
                   model.rtt(hosts[i], hosts[j], simnet::Protocol::kTor).ms());
  }
};

// ------------------------------------------------------------------ deanon

struct StrategyStats {
  double median_fraction;
  std::vector<double> fractions;
  std::vector<double> ruled_out;
  std::vector<double> e2e;
};

StrategyStats run_strategy(const SyntheticWorld& world, Strategy strategy,
                           int runs, bool weighted = false,
                           std::vector<double> weights = {}) {
  DeanonWorld dw;
  dw.nodes = world.fps;
  dw.matrix = &world.matrix;
  dw.weights = std::move(weights);
  Rng circuit_rng(42);  // same circuits across strategies
  Rng probe_rng(43);
  StrategyStats out{0, {}, {}, {}};
  for (int i = 0; i < runs; ++i) {
    const CircuitInstance c = sample_circuit(dw, circuit_rng, weighted);
    const DeanonResult r = deanonymize(dw, c, strategy, probe_rng);
    EXPECT_TRUE(r.success);
    out.fractions.push_back(r.fraction_probed);
    out.ruled_out.push_back(r.fraction_ruled_out_initially);
    out.e2e.push_back(c.e2e_ms);
  }
  out.median_fraction = quantile(out.fractions, 0.5);
  return out;
}

TEST(DeanonTest, UnawareBaselineMedianNearPaperValue) {
  SyntheticWorld world(50);
  const StrategyStats s = run_strategy(world, Strategy::kRttUnaware, 200);
  // Random search for 2 of 49 candidates: median of the max of two uniform
  // order statistics ≈ 0.71; the paper reports 0.72.
  EXPECT_GT(s.median_fraction, 0.6);
  EXPECT_LT(s.median_fraction, 0.85);
}

TEST(DeanonTest, StrategyOrderingMatchesPaper) {
  SyntheticWorld world(50);
  const int kRuns = 150;
  const StrategyStats unaware =
      run_strategy(world, Strategy::kRttUnaware, kRuns);
  const StrategyStats ignore =
      run_strategy(world, Strategy::kIgnoreTooLarge, kRuns);
  const StrategyStats informed =
      run_strategy(world, Strategy::kInformed, kRuns);
  // Fig 12's ordering: unaware > ignore-too-large > informed.
  EXPECT_LT(ignore.median_fraction, unaware.median_fraction);
  EXPECT_LT(informed.median_fraction, ignore.median_fraction);
  // And the headline ~1.5x speedup for the informed strategy (we observe
  // ~1.2-1.3x on the synthetic matrix).
  EXPECT_GT(unaware.median_fraction / informed.median_fraction, 1.1);
}

TEST(DeanonTest, RuledOutFractionAntiCorrelatesWithE2eRtt) {
  // Fig 13: lower end-to-end RTT lets the attacker rule out more nodes.
  SyntheticWorld world(40);
  const StrategyStats s =
      run_strategy(world, Strategy::kIgnoreTooLarge, 150);
  EXPECT_LT(pearson(s.e2e, s.ruled_out), -0.4);
  EXPECT_GT(max_of(s.ruled_out), 0.2);  // some circuits prune substantially
}

TEST(DeanonTest, InformedNeverProbesRuledOutNodes) {
  SyntheticWorld world(30);
  DeanonWorld dw;
  dw.nodes = world.fps;
  dw.matrix = &world.matrix;
  Rng rng(7);
  for (int i = 0; i < 30; ++i) {
    const CircuitInstance c = sample_circuit(dw, rng, false);
    const DeanonResult r = deanonymize(dw, c, Strategy::kInformed, rng);
    ASSERT_TRUE(r.success);
    EXPECT_LE(r.probes, static_cast<int>(r.candidates));
  }
}

TEST(DeanonTest, WeightedInformedBeatsWeightOrderedBaseline) {
  SyntheticWorld world(50);
  Rng wrng(77);
  std::vector<double> weights;
  for (std::size_t i = 0; i < 50; ++i)
    weights.push_back(20.0 + wrng.lognormal(5.0, 1.2));
  const int kRuns = 120;
  const StrategyStats baseline = run_strategy(
      world, Strategy::kWeightOrdered, kRuns, /*weighted=*/true, weights);
  const StrategyStats informed = run_strategy(
      world, Strategy::kInformed, kRuns, /*weighted=*/true, weights);
  // §5.1.2 footnote: the Ting-based approach speeds up deanonymization
  // relative to probing in decreasing-weight order (the paper reports a
  // median 2x; our synthetic bandwidth distribution gives a smaller but
  // consistent win — see EXPERIMENTS.md).
  EXPECT_GT(baseline.median_fraction / informed.median_fraction, 1.1);
}

TEST(DeanonTest, SampleCircuitRespectsDistinctness) {
  SyntheticWorld world(10);
  DeanonWorld dw;
  dw.nodes = world.fps;
  dw.matrix = &world.matrix;
  Rng rng(3);
  for (int i = 0; i < 100; ++i) {
    const CircuitInstance c = sample_circuit(dw, rng, false);
    std::set<std::size_t> uniq{c.source, c.entry, c.middle, c.exit};
    EXPECT_EQ(uniq.size(), 4u);
    EXPECT_GT(c.e2e_ms, c.exit_to_dst_ms);
  }
}

// --------------------------------------------------------------------- TIV

TEST(TivTest, DetectsHandCraftedViolation) {
  meas::RttMatrix m;
  const auto a = fp_of(1), b = fp_of(2), r = fp_of(3);
  m.set(a, b, 100.0);
  m.set(a, r, 30.0);
  m.set(r, b, 40.0);
  const auto tiv = best_tiv(m, a, b);
  ASSERT_TRUE(tiv.has_value());
  EXPECT_EQ(tiv->detour, r);
  EXPECT_DOUBLE_EQ(tiv->detour_ms, 70.0);
  EXPECT_NEAR(tiv->savings(), 0.3, 1e-12);
}

TEST(TivTest, NoViolationInMetricSpace) {
  // Pure great-circle latencies obey the triangle inequality, so a matrix
  // with inflation == 1 everywhere has no TIVs.
  simnet::LatencyConfig cfg;
  cfg.inflation_min = cfg.inflation_max = 1.0;
  cfg.min_rtt_ms = 0.0001;
  simnet::LatencyModel model(cfg);
  Rng rng(5);
  std::vector<simnet::HostId> hosts;
  std::vector<dir::Fingerprint> fps;
  meas::RttMatrix m;
  for (int i = 0; i < 15; ++i) {
    hosts.push_back(
        model.add_host({rng.uniform(-60.0, 60.0), rng.uniform(-180.0, 180.0)}));
    fps.push_back(fp_of(static_cast<std::uint32_t>(100 + i)));
  }
  for (std::size_t i = 0; i < fps.size(); ++i)
    for (std::size_t j = i + 1; j < fps.size(); ++j)
      m.set(fps[i], fps[j],
            model.rtt(hosts[i], hosts[j], simnet::Protocol::kTcp).ms());
  EXPECT_DOUBLE_EQ(fraction_pairs_with_tiv(m), 0.0);
}

TEST(TivTest, InflatedPathsProduceManyViolations) {
  SyntheticWorld world(30);
  const double frac = fraction_pairs_with_tiv(world.matrix);
  // The paper finds 69% of pairs TIV-capable; the synthetic world with
  // independent inflation should be in the same regime.
  EXPECT_GT(frac, 0.3);
  const auto tivs = find_all_tivs(world.matrix);
  EXPECT_NEAR(static_cast<double>(tivs.size()) / (30.0 * 29 / 2), frac, 1e-9);
  for (const auto& t : tivs) {
    EXPECT_LT(t.detour_ms, t.direct_ms);
    EXPECT_GT(t.savings(), 0.0);
    EXPECT_LT(t.savings(), 1.0);
  }
}

TEST(TivTest, BestDetourIsActuallyBest) {
  SyntheticWorld world(20);
  const auto nodes = world.matrix.nodes();
  const auto tiv = best_tiv(world.matrix, nodes[0], nodes[1]);
  if (!tiv.has_value()) GTEST_SKIP() << "pair has no TIV under this seed";
  for (const auto& r : nodes) {
    if (r == nodes[0] || r == nodes[1]) continue;
    const double detour = *world.matrix.rtt(nodes[0], r) +
                          *world.matrix.rtt(r, nodes[1]);
    EXPECT_GE(detour, tiv->detour_ms - 1e-12);
  }
}

// ---------------------------------------------------------------- circuits

TEST(CircuitsTest, RttSumsHops) {
  meas::RttMatrix m;
  const auto a = fp_of(1), b = fp_of(2), c = fp_of(3);
  m.set(a, b, 10.0);
  m.set(b, c, 20.0);
  m.set(a, c, 100.0);
  EXPECT_DOUBLE_EQ(
      circuit_rtt_ms(m, {a, b, c}, {0, 1, 2}), 30.0);
  EXPECT_DOUBLE_EQ(
      circuit_rtt_ms(m, {a, b, c}, {0, 2, 1}), 120.0);
}

TEST(CircuitsTest, NChooseK) {
  EXPECT_DOUBLE_EQ(n_choose_k(50, 3), 19600.0);
  EXPECT_DOUBLE_EQ(n_choose_k(5, 5), 1.0);
  EXPECT_DOUBLE_EQ(n_choose_k(4, 5), 0.0);
  EXPECT_NEAR(n_choose_k(50, 10), 1.0272278170e10, 1e3);
}

TEST(CircuitsTest, SamplesAreSimplePaths) {
  SyntheticWorld world(20);
  Rng rng(11);
  const auto samples =
      sample_circuits(world.matrix, world.fps, 6, 200, rng);
  EXPECT_EQ(samples.size(), 200u);
  for (const auto& s : samples) {
    EXPECT_EQ(s.path.size(), 6u);
    std::set<std::size_t> uniq(s.path.begin(), s.path.end());
    EXPECT_EQ(uniq.size(), 6u);
    EXPECT_GT(s.rtt_ms, 0.0);
  }
}

TEST(CircuitsTest, LongerCircuitsHaveHigherMeanRtt) {
  SyntheticWorld world(30);
  Rng rng(13);
  double prev_mean = 0;
  for (std::size_t len : {3u, 5u, 8u, 10u}) {
    const auto samples =
        sample_circuits(world.matrix, world.fps, len, 400, rng);
    std::vector<double> rtts;
    for (const auto& s : samples) rtts.push_back(s.rtt_ms);
    const double mean = mean_of(rtts);
    EXPECT_GT(mean, prev_mean) << "len " << len;
    prev_mean = mean;
  }
}

TEST(CircuitsTest, HistogramScalesToPopulation) {
  SyntheticWorld world(25);
  Rng rng(17);
  const auto hist =
      circuit_rtt_histogram(world.matrix, world.fps, 4, 1000, 50.0, 60, rng);
  double total = 0;
  for (double c : hist.scaled_counts) total += c;
  EXPECT_NEAR(total, n_choose_k(25, 4), 1.0);
  // Node-probability medians live in [0, 1] and are nonzero somewhere.
  double max_prob = 0;
  for (double p : hist.median_node_probability) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    max_prob = std::max(max_prob, p);
  }
  EXPECT_GT(max_prob, 0.0);
}

TEST(CircuitsTest, MoreOptionsAtModerateRttForLongerCircuits) {
  // The Fig 16 phenomenon: in a moderate RTT band, longer circuits offer
  // orders of magnitude more options than 3-hop circuits.
  SyntheticWorld world(50);
  Rng rng(19);
  const auto h3 =
      circuit_rtt_histogram(world.matrix, world.fps, 3, 5000, 50.0, 60, rng);
  const auto h5 =
      circuit_rtt_histogram(world.matrix, world.fps, 5, 5000, 50.0, 60, rng);
  // Find a bin (200-400ms) where 3-hop has appreciable mass.
  double c3 = 0, c5 = 0;
  for (std::size_t b = 4; b < 8; ++b) {
    c3 += h3.scaled_counts[b];
    c5 += h5.scaled_counts[b];
  }
  EXPECT_GT(c3, 0.0);
  EXPECT_GT(c5, c3 * 10);
}

// ---------------------------------------------------------------- coverage

TEST(CoverageTest, ClassifierRecognisesPatterns) {
  EXPECT_TRUE(is_residential_rdns("c-73-120-42-7.hsd1.ga.comcast-sim.net"));
  EXPECT_TRUE(is_residential_rdns("p5483A1B2.dip0.t-ipconnect-sim.de"));
  EXPECT_FALSE(is_residential_rdns("server-42-7.linode-sim.com"));
  EXPECT_TRUE(is_datacenter_rdns("server-42-7.linode-sim.com"));
  EXPECT_TRUE(is_datacenter_rdns("vm-3.amazonaws-sim.com"));
  EXPECT_FALSE(is_datacenter_rdns("c-73-120-42-7.hsd1.ga.comcast-sim.net"));
  EXPECT_FALSE(is_residential_rdns(""));
  EXPECT_FALSE(is_datacenter_rdns(""));
  // Plain names with no embedded numbers are not residential.
  EXPECT_FALSE(is_residential_rdns("mail.example.org"));
}

TEST(CoverageTest, StatsMatchSectionFiveThree) {
  scenario::TimelineOptions o;
  o.days = 1;
  o.initial_relays = 3000;
  const auto tl = scenario::make_timeline(o);
  const CoverageStats stats = coverage_stats(tl.final_consensus);
  EXPECT_EQ(stats.total_relays, 3000u);
  // ~83% named; ~61% of named residential; tens of countries; /24s at the
  // paper's ~0.85 ratio.
  EXPECT_NEAR(static_cast<double>(stats.with_rdns) / 3000.0, 0.83, 0.05);
  EXPECT_NEAR(stats.residential_fraction_of_named(), 0.61, 0.08);
  EXPECT_GT(stats.datacenter_named, 200u);
  EXPECT_GT(stats.countries, 30u);
  EXPECT_NEAR(static_cast<double>(stats.unique_slash24) / 3000.0, 0.85, 0.08);
  EXPECT_LE(stats.unique_slash16, stats.unique_slash24);
}

}  // namespace
}  // namespace ting::analysis
