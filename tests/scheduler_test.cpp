// Tests for AllPairsScanner: full coverage of the pair set, cache-driven
// skipping (§4.6), retry-then-report on persistent failures, and progress
// reporting.
#include <gtest/gtest.h>

#include "scenario/testbed.h"
#include "ting/scheduler.h"

namespace ting::meas {
namespace {

scenario::TestbedOptions calm(std::uint64_t seed) {
  scenario::TestbedOptions o;
  o.seed = seed;
  o.differential_fraction = 0;
  o.latency.jitter_mean_ms = 0.05;
  o.latency.jitter_spike_prob = 0;
  return o;
}

TEST(SchedulerTest, ScansAllPairsIntoCache) {
  scenario::Testbed tb = scenario::planetlab31(calm(301));
  TingConfig cfg;
  cfg.samples = 30;
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);

  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < 6; ++i) nodes.push_back(tb.fp(i));

  std::size_t progress_calls = 0;
  const ScanReport report = scanner.scan(
      nodes, {},
      [&](std::size_t done, std::size_t total, const PairResult& r) {
        ++progress_calls;
        EXPECT_LE(done, total);
        EXPECT_TRUE(r.ok);
      });

  EXPECT_EQ(report.pairs_total, 15u);
  EXPECT_EQ(report.measured, 15u);
  EXPECT_EQ(report.from_cache, 0u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_EQ(progress_calls, 15u);
  EXPECT_EQ(cache.size(), 15u);
  EXPECT_GT(report.virtual_time.sec(), 0.0);
  // Every pair present and plausible.
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const auto rtt = cache.rtt(nodes[i], nodes[j]);
      ASSERT_TRUE(rtt.has_value());
      EXPECT_GT(*rtt, 0.0);
      EXPECT_LT(*rtt, 1000.0);
    }
}

TEST(SchedulerTest, FreshCacheEntriesAreSkipped) {
  scenario::Testbed tb = scenario::planetlab31(calm(302));
  TingConfig cfg;
  cfg.samples = 20;
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);

  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < 5; ++i) nodes.push_back(tb.fp(i));

  const ScanReport first = scanner.scan(nodes);
  EXPECT_EQ(first.measured, 10u);

  // Immediately rescan: everything is fresh.
  const ScanReport second = scanner.scan(nodes);
  EXPECT_EQ(second.measured, 0u);
  EXPECT_EQ(second.from_cache, 10u);

  // After the freshness window lapses, pairs are remeasured.
  tb.loop().run_until(tb.loop().now() + Duration::seconds(8 * 24 * 3600));
  const ScanReport third = scanner.scan(nodes);
  EXPECT_EQ(third.measured, 10u);

  // max_age = 0 forces remeasurement regardless of age.
  ScanOptions force;
  force.max_age = Duration::seconds(0);
  const ScanReport fourth = scanner.scan(nodes, force);
  EXPECT_EQ(fourth.measured, 10u);
}

TEST(SchedulerTest, PersistentFailuresAreRetriedAndReported) {
  scenario::Testbed tb = scenario::planetlab31(calm(303));
  TingConfig cfg;
  cfg.samples = 20;
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);

  // A node that is not in the consensus: every circuit through it fails.
  crypto::X25519Key ghost_key;
  ghost_key.fill(0xdd);
  const dir::Fingerprint ghost = dir::Fingerprint::of_identity(ghost_key);

  std::vector<dir::Fingerprint> nodes{tb.fp(0), tb.fp(1), ghost};
  ScanOptions options;
  options.attempts_per_pair = 2;
  const ScanReport report = scanner.scan(nodes, options);

  EXPECT_EQ(report.pairs_total, 3u);
  EXPECT_EQ(report.measured, 1u);  // (0,1) works
  EXPECT_EQ(report.failed, 2u);    // both ghost pairs fail
  ASSERT_EQ(report.failed_pairs.size(), 2u);
  for (const auto& f : report.failed_pairs) {
    EXPECT_TRUE(f.a == ghost || f.b == ghost);
    // Never-in-consensus relays are permanent failures: classified as such
    // and failed on the first attempt without consuming retries.
    EXPECT_EQ(f.error_class, ErrorClass::kPermanent);
  }
  EXPECT_EQ(report.failed_permanent, 2u);
  EXPECT_EQ(report.retries, 0u);
  EXPECT_TRUE(cache.contains(tb.fp(0), tb.fp(1)));
  EXPECT_FALSE(cache.contains(tb.fp(0), ghost));
}

TEST(SchedulerTest, OrderSeedChangesVisitOrderNotResults) {
  scenario::Testbed tb = scenario::planetlab31(calm(304));
  TingConfig cfg;
  cfg.samples = 20;
  TingMeasurer measurer(tb.ting(), cfg);

  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < 5; ++i) nodes.push_back(tb.fp(i));

  RttMatrix cache_a, cache_b;
  AllPairsScanner scanner_a(measurer, cache_a);
  ScanOptions oa;
  oa.order_seed = 1;
  scanner_a.scan(nodes, oa);

  AllPairsScanner scanner_b(measurer, cache_b);
  ScanOptions ob;
  ob.order_seed = 99;
  scanner_b.scan(nodes, ob);

  // Same pairs measured; values close (jitter differs between scans).
  ASSERT_EQ(cache_a.size(), cache_b.size());
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const double a = *cache_a.rtt(nodes[i], nodes[j]);
      const double b = *cache_b.rtt(nodes[i], nodes[j]);
      EXPECT_NEAR(a, b, std::max(3.0, 0.1 * a));
    }
}

}  // namespace
}  // namespace ting::meas
