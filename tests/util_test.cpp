// Unit and property tests for src/util: RNG determinism and distribution
// sanity, statistics correctness, byte codec round-trips, time arithmetic.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "util/assert.h"
#include "util/bytes.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/time.h"

namespace ting {
namespace {

// ---------------------------------------------------------------- Duration

TEST(DurationTest, ConversionsRoundTrip) {
  EXPECT_EQ(Duration::millis(5).ns(), 5'000'000);
  EXPECT_DOUBLE_EQ(Duration::millis(5).ms(), 5.0);
  EXPECT_DOUBLE_EQ(Duration::from_ms(12.5).ms(), 12.5);
  EXPECT_EQ(Duration::seconds(2), Duration::millis(2000));
  EXPECT_EQ(Duration::micros(1500), Duration::from_ms(1.5));
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::millis(10), b = Duration::millis(4);
  EXPECT_EQ((a + b).ms(), 14.0);
  EXPECT_EQ((a - b).ms(), 6.0);
  EXPECT_EQ((a * 3).ms(), 30.0);
  EXPECT_EQ((a / 2).ms(), 5.0);
  EXPECT_LT(b, a);
  EXPECT_EQ((-b).ms(), -4.0);
}

TEST(TimePointTest, Arithmetic) {
  TimePoint t;
  t += Duration::millis(7);
  EXPECT_EQ(t.ms(), 7.0);
  const TimePoint u = t + Duration::millis(3);
  EXPECT_EQ((u - t).ms(), 3.0);
  EXPECT_LT(t, u);
}

TEST(DurationTest, FromMsRoundsNegative) {
  EXPECT_EQ(Duration::from_ms(-1.5).ns(), -1'500'000);
}

// --------------------------------------------------------------------- Rng

TEST(RngTest, DeterministicForSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ForkIsIndependentAndDeterministic) {
  Rng a(7);
  Rng f1 = a.fork(1), f1b = a.fork(1), f2 = a.fork(2);
  EXPECT_EQ(f1.next_u64(), f1b.next_u64());
  EXPECT_NE(f1.next_u64(), f2.next_u64());
}

TEST(RngTest, NextBelowInRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    EXPECT_EQ(rng.next_below(1), 0u);
  }
}

TEST(RngTest, UniformIntCoversRangeInclusive) {
  Rng rng(5);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.uniform_int(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  double lo = 1, hi = 0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    lo = std::min(lo, u);
    hi = std::max(hi, u);
  }
  EXPECT_LT(lo, 0.01);
  EXPECT_GT(hi, 0.99);
}

TEST(RngTest, ExponentialMeanApproximatelyCorrect) {
  Rng rng(11);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.exponential(5.0));
  EXPECT_NEAR(mean_of(xs), 5.0, 0.2);
  EXPECT_GT(min_of(xs), 0.0);
}

TEST(RngTest, NormalMomentsApproximatelyCorrect) {
  Rng rng(13);
  std::vector<double> xs;
  for (int i = 0; i < 20000; ++i) xs.push_back(rng.normal(10.0, 2.0));
  EXPECT_NEAR(mean_of(xs), 10.0, 0.1);
  EXPECT_NEAR(stddev_of(xs), 2.0, 0.1);
}

TEST(RngTest, ParetoRespectsScale) {
  Rng rng(17);
  for (int i = 0; i < 1000; ++i) EXPECT_GE(rng.pareto(2.0, 1.5), 2.0);
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.chance(0.0));
    EXPECT_TRUE(rng.chance(1.0));
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(23);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto orig = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, SampleIndicesDistinctAndBounded) {
  Rng rng(29);
  const auto s = rng.sample_indices(100, 30);
  EXPECT_EQ(s.size(), 30u);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (auto i : s) EXPECT_LT(i, 100u);
}

TEST(RngTest, SampleIndicesFullPopulation) {
  Rng rng(31);
  const auto s = rng.sample_indices(5, 5);
  std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 5u);
}

TEST(RngTest, WeightedIndexFollowsWeights) {
  Rng rng(37);
  std::vector<double> w{1.0, 0.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) counts[rng.weighted_index(w)]++;
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[0], 3.0, 0.3);
}

TEST(RngTest, WeightedIndexRejectsAllZero) {
  Rng rng(41);
  std::vector<double> w{0.0, 0.0};
  EXPECT_THROW(rng.weighted_index(w), CheckError);
}

TEST(Mix64Test, StatelessAndMixing) {
  EXPECT_EQ(mix64(123), mix64(123));
  EXPECT_NE(mix64(123), mix64(124));
}

// ------------------------------------------------------------------- stats

TEST(StatsTest, SummaryBasics) {
  const Summary s = summarize({1, 2, 3, 4, 5});
  EXPECT_EQ(s.n, 5u);
  EXPECT_EQ(s.min, 1);
  EXPECT_EQ(s.max, 5);
  EXPECT_EQ(s.mean, 3);
  EXPECT_EQ(s.median, 3);
  EXPECT_NEAR(s.stddev, std::sqrt(2.0), 1e-12);
}

TEST(StatsTest, SummaryEmptyIsZero) {
  const Summary s = summarize({});
  EXPECT_EQ(s.n, 0u);
  EXPECT_EQ(s.mean, 0);
}

TEST(StatsTest, QuantileInterpolates) {
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.5), 5.0);
  EXPECT_DOUBLE_EQ(quantile({0, 10}, 0.25), 2.5);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(quantile({1, 2, 3, 4}, 1.0), 4.0);
  EXPECT_DOUBLE_EQ(quantile({7}, 0.9), 7.0);
}

TEST(StatsTest, CvZeroMeanSafe) {
  Summary s;
  s.mean = 0;
  s.stddev = 1;
  EXPECT_EQ(s.cv(), 0.0);
}

TEST(CdfTest, FractionAndInverse) {
  Cdf cdf({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(0.5), 0.0);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(2), 0.5);
  EXPECT_DOUBLE_EQ(cdf.fraction_at_or_below(100), 1.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(0.0), 1.0);
  EXPECT_DOUBLE_EQ(cdf.value_at(1.0), 4.0);
}

TEST(CdfTest, EmptyCdf) {
  Cdf cdf;
  EXPECT_TRUE(cdf.empty());
  EXPECT_EQ(cdf.fraction_at_or_below(1), 0.0);
}

TEST(CdfTest, GnuplotRowsDownsamples) {
  std::vector<double> v(1000);
  for (int i = 0; i < 1000; ++i) v[i] = i;
  Cdf cdf(v);
  const std::string rows = cdf.gnuplot_rows(10);
  EXPECT_EQ(std::count(rows.begin(), rows.end(), '\n'), 10);
}

TEST(StatsTest, PearsonPerfectCorrelation) {
  EXPECT_NEAR(pearson({1, 2, 3}, {2, 4, 6}), 1.0, 1e-12);
  EXPECT_NEAR(pearson({1, 2, 3}, {6, 4, 2}), -1.0, 1e-12);
}

TEST(StatsTest, SpearmanRankAgreement) {
  // Monotone but nonlinear relation: rank correlation is exactly 1.
  EXPECT_NEAR(spearman({1, 2, 3, 4}, {1, 4, 9, 16}), 1.0, 1e-12);
  EXPECT_NEAR(spearman({1, 2, 3, 4}, {16, 9, 4, 1}), -1.0, 1e-12);
}

TEST(StatsTest, RanksHandleTies) {
  const auto r = ranks_of({10, 20, 20, 30});
  EXPECT_DOUBLE_EQ(r[0], 1.0);
  EXPECT_DOUBLE_EQ(r[1], 2.5);
  EXPECT_DOUBLE_EQ(r[2], 2.5);
  EXPECT_DOUBLE_EQ(r[3], 4.0);
}

TEST(StatsTest, LinearFitRecoversLine) {
  std::vector<double> xs, ys;
  for (int i = 0; i < 50; ++i) {
    xs.push_back(i);
    ys.push_back(3.0 * i + 7.0);
  }
  const LinearFit f = linear_fit(xs, ys);
  EXPECT_NEAR(f.slope, 3.0, 1e-9);
  EXPECT_NEAR(f.intercept, 7.0, 1e-9);
  EXPECT_NEAR(f.r2, 1.0, 1e-9);
  EXPECT_NEAR(f.at(10), 37.0, 1e-9);
}

TEST(HistogramTest, BinningAndClamping) {
  Histogram h(50.0, 4);  // bins [0,50) [50,100) [100,150) [150,200)
  h.add(10);
  h.add(49.999);
  h.add(50);
  h.add(175);
  h.add(1e9);   // clamps into last bin
  h.add(-5);    // lands in the underflow bin, not bin 0
  EXPECT_EQ(h.count(0), 2);
  EXPECT_EQ(h.count(1), 1);
  EXPECT_EQ(h.count(2), 0);
  EXPECT_EQ(h.count(3), 2);
  EXPECT_EQ(h.underflow(), 1);
  EXPECT_EQ(h.total(), 6);
  EXPECT_DOUBLE_EQ(h.bin_center(1), 75.0);
}

TEST(HistogramTest, UnderflowIsWeightedAndSeparate) {
  Histogram h(1.0, 2);
  h.add(-0.001, 2.0);
  h.add(-100);
  EXPECT_EQ(h.count(0), 0);
  EXPECT_EQ(h.count(1), 0);
  EXPECT_DOUBLE_EQ(h.underflow(), 3.0);
  EXPECT_DOUBLE_EQ(h.total(), 3.0);
}

TEST(HistogramTest, WeightedCounts) {
  Histogram h(1.0, 2);
  h.add(0.5, 2.5);
  EXPECT_DOUBLE_EQ(h.count(0), 2.5);
}

// ------------------------------------------------------------------- bytes

TEST(BytesTest, WriterReaderRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0102030405060708ULL);
  w.raw(std::string("hello"));
  const Bytes buf = w.bytes();
  EXPECT_EQ(buf.size(), 1u + 2 + 4 + 8 + 5);

  ByteReader r(buf);
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0102030405060708ULL);
  EXPECT_EQ(r.str(5), "hello");
  EXPECT_TRUE(r.empty());
}

TEST(BytesTest, BigEndianLayout) {
  ByteWriter w;
  w.u16(0x0102);
  EXPECT_EQ(w.bytes()[0], 0x01);
  EXPECT_EQ(w.bytes()[1], 0x02);
}

TEST(BytesTest, ReaderThrowsOnShortRead) {
  const Bytes buf{1, 2};
  ByteReader r(buf);
  r.u8();
  EXPECT_THROW(r.u16(), CheckError);
}

TEST(BytesTest, PadTo) {
  ByteWriter w;
  w.u8(1);
  w.pad_to(4);
  EXPECT_EQ(w.size(), 4u);
  EXPECT_EQ(w.bytes()[3], 0);
}

TEST(BytesTest, HexRoundTrip) {
  const Bytes b{0x00, 0xff, 0x5a};
  EXPECT_EQ(to_hex(b), "00ff5a");
  EXPECT_EQ(from_hex("00ff5a"), b);
  EXPECT_EQ(from_hex("00FF5A"), b);
}

TEST(BytesTest, HexRejectsBadInput) {
  EXPECT_THROW(from_hex("abc"), CheckError);   // odd length
  EXPECT_THROW(from_hex("zz"), CheckError);    // bad digit
}

TEST(StringTest, SplitTrimCase) {
  const auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  hi \t\n"), "hi");
  EXPECT_EQ(trim(""), "");
  EXPECT_TRUE(starts_with("EXTENDCIRCUIT 0", "EXTEND"));
  EXPECT_FALSE(starts_with("a", "ab"));
  EXPECT_EQ(to_upper("Tor"), "TOR");
  EXPECT_EQ(to_lower("Tor"), "tor");
}

// ------------------------------------------------------------------ assert

TEST(AssertTest, CheckThrowsWithMessage) {
  try {
    TING_CHECK_MSG(1 == 2, "math is broken: " << 42);
    FAIL() << "expected throw";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("math is broken: 42"),
              std::string::npos);
  }
}

}  // namespace
}  // namespace ting

namespace ting {
namespace {

TEST(StatsTest, KsDistanceBasics) {
  const Cdf a({1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(ks_distance(a, a), 0.0);
  // Disjoint supports: maximum possible distance.
  const Cdf lo({1, 2}), hi({10, 11});
  EXPECT_DOUBLE_EQ(ks_distance(lo, hi), 1.0);
  // Shifted distribution: gap of one sample out of two.
  const Cdf b({2, 3});
  const Cdf c({2, 4});
  EXPECT_DOUBLE_EQ(ks_distance(b, c), 0.5);
  EXPECT_DOUBLE_EQ(ks_distance(b, c), ks_distance(c, b));
}

}  // namespace
}  // namespace ting
