// Tests for the crypto substrate: cipher involution and determinism, sponge
// hash structure, HMAC/HKDF, X25519 algebraic properties, and the ntor-style
// handshake agreement.
#include <gtest/gtest.h>

#include <set>

#include "crypto/chacha.h"
#include "crypto/handshake.h"
#include "crypto/hash.h"
#include "crypto/x25519.h"
#include "util/rng.h"

namespace ting::crypto {
namespace {

Key make_key(std::uint8_t fill) {
  Key k;
  k.fill(fill);
  return k;
}

Nonce make_nonce(std::uint8_t fill) {
  Nonce n;
  n.fill(fill);
  return n;
}

Bytes bytes_of(const std::string& s) { return Bytes(s.begin(), s.end()); }

// ------------------------------------------------------------------ ChaCha

TEST(ChaChaTest, EncryptDecryptIsIdentity) {
  const Bytes msg = bytes_of("attack at dawn over the tor network");
  ChaChaCipher enc(make_key(1), make_nonce(2));
  ChaChaCipher dec(make_key(1), make_nonce(2));
  const Bytes ct = enc.transform(msg);
  EXPECT_NE(ct, msg);
  EXPECT_EQ(dec.transform(ct), msg);
}

TEST(ChaChaTest, StreamPositionMatters) {
  // Applying in two chunks equals applying all at once.
  Bytes msg(150, 0x5a);
  ChaChaCipher whole(make_key(3), make_nonce(4));
  Bytes expected = whole.transform(msg);

  ChaChaCipher chunked(make_key(3), make_nonce(4));
  Bytes part1(msg.begin(), msg.begin() + 70);
  Bytes part2(msg.begin() + 70, msg.end());
  Bytes got = chunked.transform(part1);
  const Bytes got2 = chunked.transform(part2);
  got.insert(got.end(), got2.begin(), got2.end());
  EXPECT_EQ(got, expected);
}

TEST(ChaChaTest, DifferentKeysProduceDifferentStreams) {
  Bytes zeros(64, 0);
  ChaChaCipher a(make_key(1), make_nonce(0));
  ChaChaCipher b(make_key(2), make_nonce(0));
  EXPECT_NE(a.transform(zeros), b.transform(zeros));
}

TEST(ChaChaTest, DifferentNoncesProduceDifferentStreams) {
  Bytes zeros(64, 0);
  ChaChaCipher a(make_key(1), make_nonce(0));
  ChaChaCipher b(make_key(1), make_nonce(1));
  EXPECT_NE(a.transform(zeros), b.transform(zeros));
}

TEST(ChaChaTest, CounterOffsetsKeystream) {
  Bytes zeros(128, 0);
  ChaChaCipher from0(make_key(7), make_nonce(8), 0);
  ChaChaCipher from1(make_key(7), make_nonce(8), 1);
  const Bytes s0 = from0.transform(zeros);
  const Bytes s1 = from1.transform(zeros);
  // Block 1 of s0 == block 0 of s1.
  EXPECT_TRUE(std::equal(s0.begin() + 64, s0.end(), s1.begin()));
}

TEST(ChaChaTest, KeystreamLooksBalanced) {
  Bytes zeros(1 << 14, 0);
  ChaChaCipher c(make_key(9), make_nonce(10));
  const Bytes ks = c.transform(zeros);
  std::size_t ones = 0;
  for (auto b : ks) ones += static_cast<std::size_t>(__builtin_popcount(b));
  const double frac = static_cast<double>(ones) / (ks.size() * 8.0);
  EXPECT_NEAR(frac, 0.5, 0.01);
}

TEST(ChaChaTest, OnionLayeringPeelsInOrder) {
  // Apply three layers like an onion proxy, peel like three relays.
  const Bytes msg = bytes_of("relay cell payload");
  std::vector<Key> keys{make_key(11), make_key(12), make_key(13)};
  Bytes wire = msg;
  for (int hop = 2; hop >= 0; --hop) {  // innermost layer applied first
    ChaChaCipher c(keys[static_cast<std::size_t>(hop)], make_nonce(0));
    wire = c.transform(wire);
  }
  for (int hop = 2; hop >= 0; --hop) {
    ChaChaCipher c(keys[static_cast<std::size_t>(hop)], make_nonce(0));
    wire = c.transform(wire);
  }
  EXPECT_EQ(wire, msg);
}

// -------------------------------------------------------------------- hash

TEST(HashTest, DeterministicAndInputSensitive) {
  EXPECT_EQ(hash("tor"), hash("tor"));
  EXPECT_NE(hash("tor"), hash("ting"));
  EXPECT_NE(hash(""), hash("x"));
}

TEST(HashTest, IncrementalEqualsOneShot) {
  const std::string msg(1000, 'q');
  Hasher h;
  h.update(msg.substr(0, 333));
  h.update(msg.substr(333));
  EXPECT_EQ(h.finalize(), hash(msg));
}

TEST(HashTest, LengthExtensionBlocked) {
  // "ab" then "c" differs from "a" then "bc" would be equal for a broken
  // concat; they should hash equal (same stream) — this asserts streaming
  // correctness, not a security property.
  Hasher h1;
  h1.update(std::string("ab"));
  h1.update(std::string("c"));
  Hasher h2;
  h2.update(std::string("a"));
  h2.update(std::string("bc"));
  EXPECT_EQ(h1.finalize(), h2.finalize());
  // But different total strings differ.
  EXPECT_NE(hash("abc"), hash("abd"));
}

TEST(HashTest, PaddingBoundaries) {
  // Exercise messages straddling the 32-byte rate and the length-block
  // overflow path (len 23..33 hit both padding branches).
  std::set<Digest> seen;
  for (int len = 0; len <= 80; ++len) {
    const Digest d = hash(std::string(static_cast<std::size_t>(len), 'z'));
    EXPECT_TRUE(seen.insert(d).second) << "collision at len " << len;
  }
}

TEST(HashTest, AvalancheOnSingleBitFlip) {
  Bytes a(64, 0);
  Bytes b = a;
  b[17] ^= 0x01;
  const Digest da = hash(a), db = hash(b);
  int diff_bits = 0;
  for (std::size_t i = 0; i < da.size(); ++i)
    diff_bits += __builtin_popcount(da[i] ^ db[i]);
  EXPECT_GT(diff_bits, 80);  // ~128 expected of 256
  EXPECT_LT(diff_bits, 176);
}

TEST(HmacTest, KeyAndMessageSensitivity) {
  const Bytes k1 = bytes_of("key-1"), k2 = bytes_of("key-2");
  const Bytes m1 = bytes_of("msg-1"), m2 = bytes_of("msg-2");
  EXPECT_EQ(hmac(k1, m1), hmac(k1, m1));
  EXPECT_NE(hmac(k1, m1), hmac(k2, m1));
  EXPECT_NE(hmac(k1, m1), hmac(k1, m2));
}

TEST(HmacTest, LongKeyIsHashedDown) {
  const Bytes long_key(100, 0x42);
  const Bytes msg = bytes_of("m");
  EXPECT_EQ(hmac(long_key, msg), hmac(long_key, msg));
}

TEST(HkdfTest, ProducesRequestedLengthDeterministically) {
  const Bytes ikm = bytes_of("input key material");
  const Bytes salt = bytes_of("salt");
  const Bytes a = hkdf(ikm, salt, "info", 100);
  const Bytes b = hkdf(ikm, salt, "info", 100);
  EXPECT_EQ(a.size(), 100u);
  EXPECT_EQ(a, b);
}

TEST(HkdfTest, PrefixStability) {
  // Requesting fewer bytes yields a prefix of requesting more.
  const Bytes ikm = bytes_of("ikm");
  const Bytes salt = bytes_of("s");
  const Bytes short_out = hkdf(ikm, salt, "i", 40);
  const Bytes long_out = hkdf(ikm, salt, "i", 96);
  EXPECT_TRUE(std::equal(short_out.begin(), short_out.end(), long_out.begin()));
}

TEST(HkdfTest, InfoSeparatesOutputs) {
  const Bytes ikm = bytes_of("ikm");
  const Bytes salt = bytes_of("s");
  EXPECT_NE(hkdf(ikm, salt, "forward", 32), hkdf(ikm, salt, "backward", 32));
}

// ------------------------------------------------------------------ x25519

X25519Key random_key(Rng& rng) {
  X25519Key k;
  for (auto& b : k) b = static_cast<std::uint8_t>(rng.next_u64());
  return k;
}

TEST(X25519Test, BasepointDerivationDeterministic) {
  Rng rng(101);
  const X25519Key s = random_key(rng);
  EXPECT_EQ(x25519_base(s), x25519_base(s));
}

TEST(X25519Test, DifferentSecretsGiveDifferentPublics) {
  Rng rng(102);
  std::set<X25519Key> pubs;
  for (int i = 0; i < 20; ++i)
    EXPECT_TRUE(pubs.insert(x25519_base(random_key(rng))).second);
}

TEST(X25519Test, DiffieHellmanCommutes) {
  // The core algebraic property the handshake relies on:
  // a * (b * G) == b * (a * G), over many random keypairs.
  Rng rng(103);
  for (int i = 0; i < 40; ++i) {
    const X25519Key a = random_key(rng), b = random_key(rng);
    const X25519Key A = x25519_base(a), B = x25519_base(b);
    EXPECT_EQ(x25519(a, B), x25519(b, A)) << "iteration " << i;
  }
}

TEST(X25519Test, ScalarMultAssociatesOnArbitraryPoints) {
  // a * (b * P) == b * (a * P) for arbitrary P (not just the basepoint).
  Rng rng(104);
  for (int i = 0; i < 15; ++i) {
    const X25519Key a = random_key(rng), b = random_key(rng);
    X25519Key p = random_key(rng);
    p[31] &= 127;
    EXPECT_EQ(x25519(a, x25519(b, p)), x25519(b, x25519(a, p)));
  }
}

TEST(X25519Test, ClampingMakesLowBitsIrrelevant) {
  Rng rng(105);
  X25519Key s = random_key(rng);
  X25519Key s2 = s;
  s2[0] ^= 0x07;  // bits cleared by clamping
  EXPECT_EQ(x25519_base(s), x25519_base(s2));
}

// --------------------------------------------------------------- handshake

TEST(HandshakeTest, ClientAndRelayDeriveSameKeys) {
  Rng rng(201);
  const IdentityKeys id = IdentityKeys::generate(rng);
  const ClientHandshake ch = ClientHandshake::start(rng);
  const RelayHandshakeResult rr = relay_handshake(id, ch.ephemeral_public, rng);
  const auto client_keys =
      ch.finish(id.public_key, rr.ephemeral_public, rr.keys.auth);
  ASSERT_TRUE(client_keys.has_value());
  EXPECT_EQ(client_keys->forward_key, rr.keys.forward_key);
  EXPECT_EQ(client_keys->backward_key, rr.keys.backward_key);
  EXPECT_EQ(client_keys->forward_digest_seed, rr.keys.forward_digest_seed);
  EXPECT_EQ(client_keys->backward_digest_seed, rr.keys.backward_digest_seed);
}

TEST(HandshakeTest, ForwardAndBackwardKeysDiffer) {
  Rng rng(202);
  const IdentityKeys id = IdentityKeys::generate(rng);
  const ClientHandshake ch = ClientHandshake::start(rng);
  const RelayHandshakeResult rr = relay_handshake(id, ch.ephemeral_public, rng);
  EXPECT_NE(rr.keys.forward_key, rr.keys.backward_key);
}

TEST(HandshakeTest, WrongIdentityKeyFailsAuth) {
  Rng rng(203);
  const IdentityKeys real_id = IdentityKeys::generate(rng);
  const IdentityKeys fake_id = IdentityKeys::generate(rng);
  const ClientHandshake ch = ClientHandshake::start(rng);
  const RelayHandshakeResult rr =
      relay_handshake(real_id, ch.ephemeral_public, rng);
  // Client expected fake_id: the MITM check must fail.
  EXPECT_FALSE(
      ch.finish(fake_id.public_key, rr.ephemeral_public, rr.keys.auth)
          .has_value());
}

TEST(HandshakeTest, TamperedAuthTagFailsVerification) {
  Rng rng(204);
  const IdentityKeys id = IdentityKeys::generate(rng);
  const ClientHandshake ch = ClientHandshake::start(rng);
  const RelayHandshakeResult rr = relay_handshake(id, ch.ephemeral_public, rng);
  Digest bad = rr.keys.auth;
  bad[0] ^= 1;
  EXPECT_FALSE(ch.finish(id.public_key, rr.ephemeral_public, bad).has_value());
}

TEST(HandshakeTest, SessionsAreUnique) {
  Rng rng(205);
  const IdentityKeys id = IdentityKeys::generate(rng);
  std::set<Key> forward_keys;
  for (int i = 0; i < 10; ++i) {
    const ClientHandshake ch = ClientHandshake::start(rng);
    const RelayHandshakeResult rr =
        relay_handshake(id, ch.ephemeral_public, rng);
    EXPECT_TRUE(forward_keys.insert(rr.keys.forward_key).second);
  }
}

}  // namespace
}  // namespace ting::crypto
