// Tests for the scenario DSL: FaultSpec round-tripping (property test over
// random valid specs, adversarial malformed inputs), all-or-nothing target
// validation, the ScenarioFile parser's line-numbered diagnostics, and the
// embedded scenario library's invariants.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "scenario/faults.h"
#include "scenario/scenario_file.h"
#include "scenario/scenario_library.h"
#include "util/assert.h"
#include "util/rng.h"

namespace ting::scenario {
namespace {

// ---------------------------------------------------------------------------
// FaultSpec round-trip property test

/// A random valid clause of the given kind; fields drawn from ranges the
/// grammar accepts, including awkward doubles (long fractions).
FaultClause random_clause(Rng& rng) {
  FaultClause c;
  const int kinds = 7;
  c.kind = static_cast<FaultClause::Kind>(rng.next_below(kinds));
  const auto target = [&] {
    return rng.chance(0.25) ? -1 : static_cast<int>(rng.next_below(40));
  };
  const auto awkward = [&](double lo, double hi) {
    // Mix round numbers with doubles needing many digits to round-trip.
    return rng.chance(0.5) ? std::floor(rng.uniform(lo, hi))
                           : rng.uniform(lo, hi);
  };
  switch (c.kind) {
    case FaultClause::Kind::kLoss:
      c.target = target();
      c.prob = awkward(0, 1);
      if (rng.chance(0.5)) {
        c.start_s = awkward(0, 600);
        c.duration_s = awkward(0, 600);
      }
      break;
    case FaultClause::Kind::kDegrade:
      c.target = target();
      c.extra_ms = awkward(0, 200);
      c.jitter_ms = awkward(0, 50);
      if (rng.chance(0.5)) {
        c.start_s = awkward(0, 600);
        c.duration_s = awkward(0, 600);
      }
      break;
    case FaultClause::Kind::kCrash:
      c.target = target();
      c.start_s = awkward(0, 600);
      c.duration_s = awkward(0, 600);
      break;
    case FaultClause::Kind::kChurn:
      c.events = 1 + static_cast<int>(rng.next_below(10));
      c.start_s = awkward(0, 600);
      c.period_s = awkward(1, 120);
      c.down_s = awkward(1, 300);
      break;
    case FaultClause::Kind::kDie:
      c.target = target();
      if (rng.chance(0.5)) c.start_s = awkward(1, 600);
      break;
    case FaultClause::Kind::kDiurnal:
      c.target = target();
      c.extra_ms = awkward(0.5, 50);
      c.period_s = awkward(10, 600);
      if (rng.chance(0.5)) {
        c.steps = 2 + static_cast<int>(rng.next_below(12));
        c.periods = 1 + static_cast<int>(rng.next_below(6));
      }
      break;
    case FaultClause::Kind::kFlash:
      c.target = target();
      c.start_s = awkward(0, 600);
      c.duration_s = awkward(1, 300);
      c.extra_ms = awkward(0, 200);
      c.prob = awkward(0, 1);
      break;
  }
  return c;
}

TEST(FaultSpecRoundTrip, RandomSpecsSurviveToStringParse) {
  Rng rng(20150815);
  for (int iter = 0; iter < 200; ++iter) {
    FaultSpec spec;
    const std::size_t n = 1 + rng.next_below(6);
    for (std::size_t i = 0; i < n; ++i)
      spec.clauses.push_back(random_clause(rng));
    const std::string text = spec.to_string();
    SCOPED_TRACE("iter " + std::to_string(iter) + ": " + text);
    FaultSpec back;
    ASSERT_NO_THROW(back = FaultSpec::parse(text));
    // Exact field equality, doubles included: fmt_num guarantees the
    // shortest representation that reparses to the same bits.
    EXPECT_EQ(spec, back);
    // And the canonical form is a fixed point.
    EXPECT_EQ(text, back.to_string());
  }
}

TEST(FaultSpecRoundTrip, SpecsWithNoClausesAreRejected) {
  EXPECT_EQ(FaultSpec{}.to_string(), "");
  // The CLI passes --faults only when nonempty, so an all-empty spec is a
  // user error, not a no-op.
  EXPECT_THROW(FaultSpec::parse(""), CheckError);
  EXPECT_THROW(FaultSpec::parse(";;"), CheckError);
}

// ---------------------------------------------------------------------------
// Adversarial malformed inputs: the legacy grammar

TEST(FaultSpecParse, SkipsEmptyClausesButKeepsIndexing) {
  // Trailing/duplicated separators are tolerated (empty clauses skipped)…
  const FaultSpec s = FaultSpec::parse(";loss:*:0.1;;die:3;");
  ASSERT_EQ(s.clauses.size(), 2u);
  EXPECT_EQ(s.clauses[0].kind, FaultClause::Kind::kLoss);
  EXPECT_EQ(s.clauses[1].kind, FaultClause::Kind::kDie);
  // …but the clause counter still counts them, so errors in later clauses
  // name their real position in the input.
  try {
    FaultSpec::parse(";loss:*:0.1;;die:oops");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("#4"), std::string::npos) << e.what();
    EXPECT_NE(std::string(e.what()).find("die:oops"), std::string::npos);
  }
}

struct BadInput {
  const char* text;
  const char* must_mention;  // substring of the diagnostic
};

TEST(FaultSpecParse, MalformedInputsNameClauseAndField) {
  const std::vector<BadInput> cases = {
      {"loss:*", "#1"},                        // missing arity
      {"loss:*:0.1:5", "#1"},                  // window needs both fields
      {"loss:*:1.5", "prob"},                  // out of range
      {"loss:*:nan", "finite"},                // NaN rejected
      {"loss:*:inf", "finite"},                // inf rejected
      {"loss:*:-0.1", "prob"},                 // negative prob
      {"degrade:2:-3:1", "extra_ms"},          // negative latency
      {"degrade:2:3:-1", "jitter_ms"},         // negative jitter
      {"degrade:2:3:1:-5:10", "window"},       // negative window start
      {"crash:1:10", "#1"},                    // crash wants start+dur
      {"churn:0:0:10:10", "events"},           // zero events
      {"churn:2:0:10", "#1"},                  // churn arity
      {"die:*:10:20", "#1"},                   // die arity
      {"diurnal:*:5", "#1"},                   // diurnal arity
      {"diurnal:*:-5:60", "peak"},             // negative peak
      {"diurnal:*:5:0", "period"},             // zero period
      {"diurnal:*:5:60:1:2", "steps"},         // < 2 steps
      {"diurnal:*:5:60:4:0", "periods"},       // zero periods
      {"flash:*:0:10:5", "#1"},                // flash arity
      {"flash:*:0:10:5:1.2", "loss_prob"},     // flash prob range
      {"flash:*:0:-10:5:0.1", "dur_s"},        // negative duration
      {"warp:*:1", "unknown fault kind"},      // unknown kind
      {"loss:abc:0.1", "target"},              // non-numeric target
      {"loss:-2:0.1", "target"},               // negative explicit target
      {"loss:1.5:0.1", "integer"},             // fractional target
      {"loss:*:0.1;crash:zz:1:2", "#2"},       // second clause named
  };
  for (const BadInput& bad : cases) {
    SCOPED_TRACE(bad.text);
    try {
      FaultSpec::parse(bad.text);
      FAIL() << "accepted: " << bad.text;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(bad.must_mention),
                std::string::npos)
          << "diagnostic for '" << bad.text << "' lacks '" << bad.must_mention
          << "': " << e.what();
    }
  }
}

TEST(FaultSpecValidateTargets, NamesOffendingClause) {
  const FaultSpec s = FaultSpec::parse("loss:*:0.1;die:3;crash:11:5:10");
  EXPECT_NO_THROW(s.validate_targets(12));
  try {
    s.validate_targets(10);  // crash:11 is out of range
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("#3"), std::string::npos) << what;
    EXPECT_NE(what.find("11"), std::string::npos) << what;
    EXPECT_NE(what.find("10"), std::string::npos) << what;
  }
  // '*' and churn clauses carry no index to validate.
  EXPECT_NO_THROW(
      FaultSpec::parse("loss:*:0.5;churn:3:10:20:30").validate_targets(2));
}

// ---------------------------------------------------------------------------
// ScenarioFile parsing

constexpr const char* kGood = R"(ting-scenario v1
# a comment
[scenario]
name = unit-test
summary = parser exercise   # trailing comment

[topology]
relays = 9
nodes = 5
seed = 77
differential = 0.25

[dynamics]
fault = loss:*:0.125
fault = diurnal:2:6.5:90:4:2
churn-rate = 0.1
rejoin-rate = 0.75
initially-absent = 0.2

[adversary]
fault = die:4
congestion-rounds = 5
congestion-victim = 1:2:3
congestion-off-path = 20
)";

TEST(ScenarioFileParse, ReadsEverySection) {
  const ScenarioFile s = ScenarioFile::parse(kGood, "<test>");
  EXPECT_EQ(s.version, 1);
  EXPECT_EQ(s.name, "unit-test");
  EXPECT_EQ(s.summary, "parser exercise");
  EXPECT_EQ(s.relays, 9u);
  EXPECT_EQ(s.nodes, 5u);
  EXPECT_EQ(s.seed, 77u);
  EXPECT_DOUBLE_EQ(s.differential, 0.25);
  ASSERT_EQ(s.faults.clauses.size(), 3u);
  EXPECT_EQ(s.faults.clauses[0].kind, FaultClause::Kind::kLoss);
  EXPECT_EQ(s.faults.clauses[1].kind, FaultClause::Kind::kDiurnal);
  EXPECT_EQ(s.faults.clauses[2].kind, FaultClause::Kind::kDie);
  EXPECT_EQ(s.fault_spec_string(), "loss:*:0.125;diurnal:2:6.5:90:4:2;die:4");
  EXPECT_DOUBLE_EQ(s.churn_rate, 0.1);
  EXPECT_DOUBLE_EQ(s.rejoin_rate, 0.75);
  EXPECT_DOUBLE_EQ(s.initially_absent, 0.2);
  EXPECT_TRUE(s.congestion.enabled);
  EXPECT_EQ(s.congestion.rounds, 5);
  EXPECT_EQ(s.congestion.entry, 1);
  EXPECT_EQ(s.congestion.middle, 2);
  EXPECT_EQ(s.congestion.exit, 3);
  EXPECT_EQ(s.congestion.off_path, 20);
  const ChurnFeedOptions churn = s.churn_options(99);
  EXPECT_EQ(churn.seed, 99u);
  EXPECT_DOUBLE_EQ(churn.churn_rate, 0.1);
  EXPECT_DOUBLE_EQ(churn.rejoin_rate, 0.75);
  EXPECT_DOUBLE_EQ(churn.initially_absent, 0.2);
}

/// The parser's diagnostics carry origin:line so a fat scenario file is
/// debuggable; each bad document names its sick line.
struct BadDoc {
  std::string text;
  const char* must_mention;
};

TEST(ScenarioFileParse, MalformedDocumentsNameTheLine) {
  const std::string header = "ting-scenario v1\n[scenario]\nname = x\n"
                             "summary = y\n";
  const std::vector<BadDoc> cases = {
      {"", "missing"},                                     // no magic at all
      {"not-a-scenario v1\n", "expected header"},          // bad magic
      {"ting-scenario v2\n", "unsupported scenario"},      // future version
      {header + "[weird]\n", "<t>:5"},                     // unknown section
      {header + "[topology\n", "unterminated"},            // bad header
      {header + "nonsense\n", "expected 'key = value'"},   // not a kv line
      {header + "[topology]\nrelays = four\n", "<t>:6"},   // non-numeric
      {header + "[topology]\nwidth = 4\n", "unknown [topology] key"},
      {header + "[scenario]\ncolor = red\n", "unknown [scenario] key"},
      {header + "[dynamics]\nchurn-rate = 1.5\n", "out of [0, 1]"},
      {header + "[dynamics]\nfault = loss:*:9\n", "<t>:6"},  // bad clause
      {"ting-scenario v1\nname = x\n", "before any section"},
      {header + "[adversary]\ncongestion-victim = 1:2\n", "entry"},
  };
  for (const BadDoc& bad : cases) {
    SCOPED_TRACE(bad.text);
    try {
      ScenarioFile::parse(bad.text, "<t>");
      FAIL() << "accepted: " << bad.text;
    } catch (const CheckError& e) {
      EXPECT_NE(std::string(e.what()).find(bad.must_mention),
                std::string::npos)
          << "diagnostic lacks '" << bad.must_mention << "': " << e.what();
    }
  }
}

TEST(ScenarioFileValidate, CatchesCrossFieldNonsense) {
  const auto doc = [](const std::string& topology,
                      const std::string& tail = "") {
    return "ting-scenario v1\n[scenario]\nname = x\nsummary = y\n"
           "[topology]\n" + topology + tail;
  };
  // relays < nodes
  EXPECT_THROW(ScenarioFile::parse(doc("relays = 4\nnodes = 9\n"), "<t>"),
               CheckError);
  // fault target beyond the scan-node count
  EXPECT_THROW(ScenarioFile::parse(
                   doc("nodes = 5\n", "[dynamics]\nfault = die:7\n"), "<t>"),
               CheckError);
  // victim circuit with a repeated relay
  EXPECT_THROW(
      ScenarioFile::parse(
          doc("nodes = 5\n",
              "[adversary]\ncongestion-victim = 2:2:8\n"
              "congestion-off-path = 20\n"),
          "<t>"),
      CheckError);
  // bad name shape
  EXPECT_THROW(ScenarioFile::parse("ting-scenario v1\n[scenario]\n"
                                   "name = Bad Name\nsummary = y\n",
                                   "<t>"),
               CheckError);
}

// ---------------------------------------------------------------------------
// The embedded library

TEST(ScenarioLibrary, EveryScenarioParsesAndDeclaresItsOwnName) {
  ASSERT_GE(scenario_library().size(), 6u);
  for (const LibraryScenario& entry : scenario_library()) {
    SCOPED_TRACE(entry.name);
    ScenarioFile s;
    ASSERT_NO_THROW(s = ScenarioFile::parse(
                        entry.text, "<embedded:" + entry.name + ">"));
    EXPECT_EQ(s.name, entry.name);
    // Every scenario's compiled fault string survives the round trip.
    if (s.has_faults()) {
      EXPECT_EQ(FaultSpec::parse(s.fault_spec_string()), s.faults);
    }
    // And resolves through the --scenario lookup path.
    EXPECT_NO_THROW(load_scenario(entry.name));
  }
}

TEST(ScenarioLibrary, HostileScenariosAreArmed) {
  const ScenarioFile attack = load_scenario("congestion-attack");
  EXPECT_TRUE(attack.congestion.enabled);
  EXPECT_GE(attack.congestion.rounds, 1);

  const ScenarioFile massacre = load_scenario("massacre");
  int dead = 0;
  for (const FaultClause& c : massacre.faults.clauses)
    if (c.kind == FaultClause::Kind::kDie) ++dead;
  EXPECT_GE(dead, 3) << "massacre needs a dead cluster big enough to trip "
                        "the quarantine breaker";

  const ScenarioFile calm = load_scenario("calm");
  EXPECT_FALSE(calm.has_faults());
  EXPECT_FALSE(calm.congestion.enabled);
}

TEST(ScenarioLibrary, UnknownNamesListTheLibrary) {
  try {
    load_scenario("no-such-scenario");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("no-such-scenario"), std::string::npos);
    EXPECT_NE(what.find("massacre"), std::string::npos) << what;
  }
}

}  // namespace
}  // namespace ting::scenario
