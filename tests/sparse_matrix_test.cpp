// Property tests for SparseRttMatrix: exact binary round-trips (including
// adversarial double bit patterns), byte-determinism of serialization,
// commutative/associative merge, TTL-expiry enumeration, CSV interop with
// the dense RttMatrix, and the load_matrix_any() format sniffer.
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <limits>
#include <map>
#include <string>
#include <tuple>
#include <utility>
#include <vector>

#include "ting/rtt_matrix.h"
#include "ting/sparse_matrix.h"
#include "util/assert.h"
#include "util/rng.h"

namespace ting::meas {
namespace {

dir::Fingerprint fp(std::size_t i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%040zx", i);
  return dir::Fingerprint::from_hex(buf);
}

TimePoint at(std::int64_t s) { return TimePoint::from_ns(s * 1'000'000'000); }

/// A randomly filled matrix over `n` relays with ~half the pairs present.
SparseRttMatrix random_matrix(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  SparseRttMatrix m;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (rng.uniform() < 0.5) continue;
      m.set(fp(i), fp(j), rng.uniform() * 300.0,
            at(static_cast<std::int64_t>(rng.uniform_int(1, 1000000))),
            static_cast<int>(rng.uniform_int(1, 50)));
    }
  }
  return m;
}

bool same_entries(const SparseRttMatrix& a, const SparseRttMatrix& b) {
  return a.to_bin() == b.to_bin();
}

TEST(SparseRttMatrixTest, SetLookupAndCanonicalPairOrder) {
  SparseRttMatrix m;
  m.set(fp(2), fp(1), 12.5, at(10), 3);
  EXPECT_EQ(m.size(), 1u);
  // The pair is unordered: both orientations see the same entry.
  ASSERT_TRUE(m.rtt(fp(1), fp(2)).has_value());
  EXPECT_DOUBLE_EQ(*m.rtt(fp(1), fp(2)), 12.5);
  EXPECT_DOUBLE_EQ(*m.rtt(fp(2), fp(1)), 12.5);
  EXPECT_TRUE(m.contains(fp(2), fp(1)));
  EXPECT_FALSE(m.contains(fp(1), fp(3)));
  const SparseRttMatrix::Entry* e = m.entry(fp(1), fp(2));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->measured_at, at(10));
  EXPECT_EQ(e->samples, 3);
  // set() overwrites unconditionally, like RttMatrix::set.
  m.set(fp(1), fp(2), 9.0, at(5), 1);
  EXPECT_DOUBLE_EQ(*m.rtt(fp(1), fp(2)), 9.0);
  EXPECT_EQ(m.size(), 1u);
}

TEST(SparseRttMatrixTest, BinRoundTripIsExact) {
  const SparseRttMatrix m = random_matrix(17, 12);
  ASSERT_GT(m.size(), 0u);
  const std::string bin = m.to_bin();
  EXPECT_EQ(bin.size(), 16 + m.size() * SparseRttMatrix::kBinRecordSize);
  const SparseRttMatrix back = SparseRttMatrix::from_bin(bin);
  EXPECT_EQ(back.size(), m.size());
  // Equal data serializes to equal bytes (sorted record order).
  EXPECT_EQ(back.to_bin(), bin);
}

TEST(SparseRttMatrixTest, BinRoundTripsAdversarialDoubles) {
  // CSV's 6-significant-digit printing would destroy all of these; the
  // binary format must carry the exact bit patterns.
  const double values[] = {
      0.1 + 0.2,                                    // classic 0.30000000000000004
      1.0 / 3.0,
      std::nextafter(25.0, 26.0),                   // one ulp off a round value
      1e-300,                                       // subnormal-adjacent
      123456.789012345,
      std::numeric_limits<double>::denorm_min(),
      std::numeric_limits<double>::max(),
  };
  SparseRttMatrix m;
  std::size_t i = 0;
  for (const double v : values) m.set(fp(0), fp(++i), v, at(1), 1);
  const SparseRttMatrix back = SparseRttMatrix::from_bin(m.to_bin());
  i = 0;
  for (const double v : values) {
    const SparseRttMatrix::Entry* e = back.entry(fp(0), fp(++i));
    ASSERT_NE(e, nullptr);
    EXPECT_EQ(std::bit_cast<std::uint64_t>(e->rtt_ms),
              std::bit_cast<std::uint64_t>(v));
  }
}

TEST(SparseRttMatrixTest, BinRejectsCorruptInput) {
  const SparseRttMatrix m = random_matrix(3, 6);
  std::string bin = m.to_bin();
  EXPECT_THROW(SparseRttMatrix::from_bin(bin.substr(0, bin.size() - 1)),
               CheckError);
  std::string bad_magic = bin;
  bad_magic[0] = 'X';
  EXPECT_THROW(SparseRttMatrix::from_bin(bad_magic), CheckError);
  EXPECT_THROW(SparseRttMatrix::from_bin("short"), CheckError);
}

TEST(SparseRttMatrixTest, MergeIsCommutativeAndAssociative) {
  // Overlapping pair sets with conflicting entries: merge order must not
  // matter (freshest-wins with a total-order tiebreak).
  const SparseRttMatrix a = random_matrix(101, 10);
  const SparseRttMatrix b = random_matrix(202, 10);
  const SparseRttMatrix c = random_matrix(303, 10);

  SparseRttMatrix ab = a;
  ab.merge(b);
  SparseRttMatrix ba = b;
  ba.merge(a);
  EXPECT_TRUE(same_entries(ab, ba));

  SparseRttMatrix ab_c = ab;
  ab_c.merge(c);
  SparseRttMatrix bc = b;
  bc.merge(c);
  SparseRttMatrix a_bc = a;
  a_bc.merge(bc);
  EXPECT_TRUE(same_entries(ab_c, a_bc));
}

TEST(SparseRttMatrixTest, MergeTiebreaksEqualTimestamps) {
  // Same pair, same timestamp, different values: the winner must be the
  // same regardless of merge direction (rtt bit pattern breaks the tie).
  SparseRttMatrix x, y;
  x.set(fp(1), fp(2), 10.0, at(5), 1);
  y.set(fp(1), fp(2), 20.0, at(5), 1);
  SparseRttMatrix xy = x;
  xy.merge(y);
  SparseRttMatrix yx = y;
  yx.merge(x);
  EXPECT_EQ(xy.to_bin(), yx.to_bin());
  EXPECT_DOUBLE_EQ(*xy.rtt(fp(1), fp(2)), 20.0);  // larger bits win
}

TEST(SparseRttMatrixTest, MergePrefersFresher) {
  SparseRttMatrix old_m, new_m;
  old_m.set(fp(1), fp(2), 50.0, at(5), 9);
  new_m.set(fp(1), fp(2), 60.0, at(6), 1);
  old_m.merge(new_m);
  EXPECT_DOUBLE_EQ(*old_m.rtt(fp(1), fp(2)), 60.0);
}

TEST(SparseRttMatrixTest, AbsorbRestampsDenseResults) {
  RttMatrix dense;
  dense.set(fp(1), fp(2), 30.0, TimePoint{}, 5);  // deterministic scans stamp 0
  dense.set(fp(2), fp(3), 40.0, TimePoint{}, 5);
  SparseRttMatrix m;
  m.set(fp(0), fp(1), 10.0, at(1), 1);
  m.absorb(dense, at(100));
  EXPECT_EQ(m.size(), 3u);
  EXPECT_EQ(m.entry(fp(1), fp(2))->measured_at, at(100));
  EXPECT_EQ(m.entry(fp(2), fp(3))->measured_at, at(100));
  EXPECT_EQ(m.entry(fp(0), fp(1))->measured_at, at(1));  // untouched
}

TEST(SparseRttMatrixTest, ExpiredPairsOldestFirst) {
  SparseRttMatrix m;
  m.set(fp(1), fp(2), 1.0, at(10), 1);
  m.set(fp(3), fp(4), 2.0, at(30), 1);
  m.set(fp(5), fp(6), 3.0, at(20), 1);
  m.set(fp(7), fp(8), 4.0, at(95), 1);  // fresh at now=100, ttl=10
  const auto expired = m.expired_pairs(at(100), Duration::seconds(10));
  ASSERT_EQ(expired.size(), 3u);
  EXPECT_EQ(expired[0].measured_at, at(10));
  EXPECT_EQ(expired[1].measured_at, at(20));
  EXPECT_EQ(expired[2].measured_at, at(30));
  EXPECT_EQ(expired[0].a, fp(1));
  EXPECT_EQ(expired[0].b, fp(2));
}

TEST(SparseRttMatrixTest, CoverageCensus) {
  SparseRttMatrix m;
  m.set(fp(0), fp(1), 1.0, at(95), 1);  // fresh
  m.set(fp(0), fp(2), 2.0, at(10), 1);  // stale
  const std::vector<dir::Fingerprint> nodes = {fp(0), fp(1), fp(2)};
  const auto cc = m.coverage(nodes, at(100), Duration::seconds(10));
  EXPECT_EQ(cc.total, 3u);
  EXPECT_EQ(cc.fresh, 1u);
  EXPECT_EQ(cc.stale, 1u);
  EXPECT_EQ(cc.missing, 1u);
  EXPECT_DOUBLE_EQ(cc.coverage(), 1.0 / 3.0);
  // Degenerate node sets are fully covered by definition.
  EXPECT_DOUBLE_EQ(m.coverage({}, at(100), Duration::seconds(10)).coverage(),
                   1.0);
}

TEST(SparseRttMatrixTest, EraseRelayDropsAllTouchingPairs) {
  SparseRttMatrix m = random_matrix(7, 8);
  const std::size_t before = m.size();
  std::size_t touching = 0;
  for (std::size_t j = 0; j < 8; ++j)
    if (j != 3 && m.contains(fp(3), fp(j))) ++touching;
  EXPECT_EQ(m.erase_relay(fp(3)), touching);
  EXPECT_EQ(m.size(), before - touching);
  for (std::size_t j = 0; j < 8; ++j) EXPECT_FALSE(m.contains(fp(3), fp(j)));
}

TEST(SparseRttMatrixTest, DenseInteropAndCsvSchema) {
  const SparseRttMatrix m = random_matrix(23, 9);
  const RttMatrix dense = m.to_rtt_matrix();
  EXPECT_EQ(dense.size(), m.size());
  // CSV output is byte-identical to the dense matrix's (same schema, same
  // canonical order), so daemon artifacts drop into existing tooling.
  EXPECT_EQ(m.to_csv(), dense.to_csv());
  const SparseRttMatrix back = SparseRttMatrix::from_rtt_matrix(dense);
  EXPECT_TRUE(same_entries(back, m));
  // And the dense parser accepts sparse CSV (round trip through RttMatrix).
  const RttMatrix reparsed = RttMatrix::from_csv(m.to_csv());
  EXPECT_EQ(reparsed.to_csv(), dense.to_csv());
}

TEST(SparseRttMatrixTest, AggregatesMatchDense) {
  const SparseRttMatrix m = random_matrix(31, 7);
  const RttMatrix dense = m.to_rtt_matrix();
  EXPECT_EQ(m.nodes(), dense.nodes());
  EXPECT_EQ(m.values(), dense.values());
  EXPECT_DOUBLE_EQ(m.mean_rtt(), dense.mean_rtt());
}

TEST(SparseRttMatrixTest, ExpiredPairsMatchBruteForceUnderRandomOps) {
  // The freshness wheel (lazy invalidation + periodic compaction) must stay
  // equivalent to re-scanning every entry, through any interleaving of
  // inserts, overwrites, restamps, merges, and relay erasure.
  Rng rng(911);
  const std::size_t n = 14;
  SparseRttMatrix m;
  std::map<std::pair<std::size_t, std::size_t>, std::int64_t> reference;
  const auto check = [&](std::int64_t now_s, std::int64_t ttl_s) {
    std::vector<std::tuple<std::int64_t, std::size_t, std::size_t>> want;
    for (const auto& [k, t] : reference)
      if (now_s - t > ttl_s) want.emplace_back(t, k.first, k.second);
    std::sort(want.begin(), want.end());
    const auto got = m.expired_pairs(at(now_s), Duration::seconds(ttl_s));
    ASSERT_EQ(got.size(), want.size());
    for (std::size_t k = 0; k < got.size(); ++k) {
      EXPECT_EQ(got[k].measured_at, at(std::get<0>(want[k])));
      EXPECT_EQ(got[k].a, fp(std::get<1>(want[k])));
      EXPECT_EQ(got[k].b, fp(std::get<2>(want[k])));
    }
  };
  for (int round = 0; round < 40; ++round) {
    for (int op = 0; op < 25; ++op) {
      const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      auto j = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
      if (i == j) j = (j + 1) % n;
      const std::pair<std::size_t, std::size_t> key = std::minmax(i, j);
      const auto t = static_cast<std::int64_t>(rng.uniform_int(1, 200));
      m.set(fp(key.first), fp(key.second), rng.uniform() * 100.0, at(t), 1);
      reference[key] = t;
    }
    if (round % 7 == 3) {
      // Merge a batch in. merge() is freshest-wins, and the expiry check
      // only compares stamps, so the reference keeps the max stamp per pair
      // (the equal-stamp value tiebreak cannot change measured_at).
      SparseRttMatrix other;
      for (int k = 0; k < 10; ++k) {
        const auto i = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
        auto j = static_cast<std::size_t>(rng.uniform_int(0, n - 1));
        if (i == j) j = (j + 1) % n;
        const std::pair<std::size_t, std::size_t> key = std::minmax(i, j);
        const auto t = static_cast<std::int64_t>(rng.uniform_int(1, 200));
        other.set(fp(key.first), fp(key.second), 500.0 + k, at(t), 1);
        const auto it = reference.find(key);
        if (it == reference.end() || it->second < t) reference[key] = t;
      }
      m.merge(other);
    }
    if (round % 11 == 5) {
      const std::size_t victim = rng.uniform_int(0, n - 1);
      m.erase_relay(fp(victim));
      std::erase_if(reference, [&](const auto& kv) {
        return kv.first.first == victim || kv.first.second == victim;
      });
    }
    check(210, static_cast<std::int64_t>(rng.uniform_int(1, 220)));
  }
}

TEST(SparseRttMatrixTest, RestampBackToOldValueNotDuplicated) {
  // Re-stamping a pair to a value it held before can leave two live-looking
  // records in the same wheel bucket; enumeration must dedupe.
  SparseRttMatrix m;
  m.set(fp(1), fp(2), 1.0, at(10), 1);
  m.set(fp(1), fp(2), 2.0, at(50), 1);
  m.set(fp(1), fp(2), 3.0, at(10), 1);  // back to the original stamp
  const auto expired = m.expired_pairs(at(100), Duration::seconds(5));
  ASSERT_EQ(expired.size(), 1u);
  EXPECT_EQ(expired[0].measured_at, at(10));
  // Same-stamp overwrite is also not a new wheel record.
  m.set(fp(1), fp(2), 4.0, at(10), 1);
  EXPECT_EQ(m.expired_pairs(at(100), Duration::seconds(5)).size(), 1u);
}

TEST(SparseRttMatrixTest, MemoryBytesAndReservePolicy) {
  SparseRttMatrix m;
  const std::size_t empty_bytes = m.memory_bytes();
  m.reserve_pairs(5000);
  for (std::size_t i = 0; i < 100; ++i)
    for (std::size_t j = i + 1; j < 100; ++j)
      if ((i + j) % 2 == 0) m.set(fp(i), fp(j), 1.0, at(1), 1);
  ASSERT_GT(m.size(), 2000u);
  const std::size_t full_bytes = m.memory_bytes();
  EXPECT_GT(full_bytes, empty_bytes);
  // The estimate should land in the right ballpark per entry: at least the
  // raw key+entry payload, and not wildly above it (the 18M-entry budget in
  // ROADMAP assumes a low-hundreds bytes/pair figure).
  const double per_pair =
      static_cast<double>(full_bytes) / static_cast<double>(m.size());
  EXPECT_GT(per_pair, 48.0);
  EXPECT_LT(per_pair, 512.0);
  EXPECT_LE(m.load_factor(), SparseRttMatrix::kMaxLoadFactor + 0.01f);
}

TEST(SparseRttMatrixTest, SaveLoadAnySniffsFormat) {
  const SparseRttMatrix m = random_matrix(5, 6);
  const std::string dir = ::testing::TempDir();
  const std::string bin_path = dir + "/sm_test.tingmx";
  const std::string csv_path = dir + "/sm_test.csv";
  m.save_bin(bin_path);
  m.save_csv(csv_path);

  const SparseRttMatrix from_disk = SparseRttMatrix::load_bin(bin_path);
  EXPECT_TRUE(same_entries(from_disk, m));

  const RttMatrix via_bin = load_matrix_any(bin_path);
  const RttMatrix via_csv = load_matrix_any(csv_path);
  // CSV rounds to 6 significant digits, so compare through CSV text (the
  // binary path must not lose anything the CSV path keeps).
  EXPECT_EQ(via_bin.to_csv(), m.to_csv());
  EXPECT_EQ(via_csv.to_csv(), RttMatrix::from_csv(m.to_csv()).to_csv());
}

}  // namespace
}  // namespace ting::meas
