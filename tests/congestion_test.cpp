// Tests for the Murdoch–Danezis congestion probe: the relay load model it
// exploits, detection of on-path relays, and rejection of off-path ones.
#include <gtest/gtest.h>

#include "analysis/congestion.h"
#include "analysis/deanon.h"
#include "echo/echo.h"
#include "scenario/testbed.h"
#include "ting/measurer.h"

namespace ting::analysis {
namespace {

/// A world where the congestion side channel is strong enough to probe:
/// relays with pronounced load sensitivity. Returns the testbed plus a
/// victim stream through relays (v0, v1, v2).
struct ProbeWorld {
  scenario::Testbed tb;
  tor::OnionProxy::StreamPtr victim_stream;
  std::vector<std::size_t> victim_path{2, 5, 8};

  ProbeWorld() : tb(make_world()) {
    // The victim: a circuit through relays 2, 5, 8 with an echo stream to
    // the measurement host (any reachable endpoint works).
    bool built = false;
    tor::CircuitHandle handle = 0;
    tb.ting().op().build_circuit(
        {tb.fp(victim_path[0]), tb.fp(victim_path[1]), tb.fp(victim_path[2]),
         tb.ting().z_fp()},
        [&](tor::CircuitHandle h) {
          built = true;
          handle = h;
        },
        {});
    tb.loop().run_while_waiting_for([&] { return built; },
                                    Duration::seconds(120));
    EXPECT_TRUE(built);
    bool connected = false;
    victim_stream = tb.ting().op().open_stream(
        handle, tb.ting().echo_endpoint(), [&] { connected = true; }, {});
    tb.loop().run_while_waiting_for([&] { return connected; },
                                    Duration::seconds(120));
    EXPECT_TRUE(connected);
  }

  static scenario::Testbed make_world() {
    scenario::TestbedOptions o;
    o.seed = 901;
    o.differential_fraction = 0;
    o.latency.jitter_mean_ms = 0.05;
    o.latency.jitter_spike_prob = 0;
    scenario::Testbed tb = scenario::planetlab31(o);
    // Strengthen the congestion side channel for the probe experiment.
    // (RelayConfig is fixed at construction; the load model reads config
    // through the relay, so rebuild-level knobs are set via the testbed's
    // defaults — instead we simply rely on the default load model, which
    // the probe's flood is sized to move.)
    return tb;
  }
};

TEST(RelayLoadModelTest, LoadDecaysOverTime) {
  scenario::TestbedOptions o;
  o.seed = 902;
  scenario::Testbed tb = scenario::planetlab31(o);
  // Drive cells through relay 0 by measuring a pair through it, then let
  // the network idle: load must decay toward zero.
  meas::TingConfig cfg;
  cfg.samples = 50;
  meas::TingMeasurer measurer(tb.ting(), cfg);
  (void)measurer.measure_circuit_blocking({tb.fp(0)}, 50);
  tb.loop().run_until(tb.loop().now() + Duration::seconds(5));
  // current_load() reflects decay only at update time; after idling the
  // next cell will see a tiny value. Indirect check: cells were processed.
  EXPECT_GT(tb.relay(0).cells_processed(), 50u);
}

TEST(CongestionProbeTest, DetectsOnPathRelay) {
  ProbeWorld w;
  CongestionProbeConfig cfg;
  cfg.rounds = 6;
  cfg.burst_spacing = Duration::millis(1);
  const CongestionVerdict v =
      congestion_probe(w.tb.ting(), w.victim_stream,
                       w.tb.fp(w.victim_path[1]) /* the middle relay */, cfg);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_TRUE(v.on_path) << "effect size " << v.effect_size << " (on "
                         << v.mean_on_ms << "ms vs off " << v.mean_off_ms
                         << "ms)";
  EXPECT_GT(v.mean_on_ms, v.mean_off_ms);
  EXPECT_GT(v.flood_cells, 100u);  // the §5.1 point: probing is expensive
}

TEST(CongestionProbeTest, RejectsOffPathRelay) {
  ProbeWorld w;
  CongestionProbeConfig cfg;
  cfg.rounds = 6;
  cfg.burst_spacing = Duration::millis(1);
  const CongestionVerdict v = congestion_probe(
      w.tb.ting(), w.victim_stream, w.tb.fp(20) /* not on the circuit */, cfg);
  ASSERT_TRUE(v.ok) << v.error;
  EXPECT_FALSE(v.on_path) << "effect size " << v.effect_size;
}

TEST(CongestionProbeTest, FailsCleanlyOnUnreachableCandidate) {
  ProbeWorld w;
  crypto::X25519Key k;
  k.fill(0xab);
  CongestionProbeConfig cfg;
  cfg.rounds = 2;
  const CongestionVerdict v = congestion_probe(
      w.tb.ting(), w.victim_stream, dir::Fingerprint::of_identity(k), cfg);
  EXPECT_FALSE(v.ok);
  EXPECT_FALSE(v.error.empty());
}

}  // namespace
}  // namespace ting::analysis

namespace ting::analysis {
namespace {

TEST(CongestionProbeTest, EndToEndDeanonymizationWithRealProbes) {
  // The full §5.1 pipeline with no oracle: the attacker-destination knows
  // the exit and the end-to-end RTT, uses a Ting all-pairs matrix to order
  // candidates (Algorithm 1), and tests each with a real Murdoch–Danezis
  // congestion probe until the entry and middle are identified.
  ProbeWorld w;  // victim circuit through relays 2, 5, 8; 8 is the exit

  // The attacker's node universe: a 12-relay subset containing the circuit.
  std::vector<std::size_t> universe{0, 1, 2, 3, 5, 7, 8, 11, 14, 17, 20, 23};
  DeanonWorld dw;
  meas::RttMatrix matrix;
  for (std::size_t i : universe) dw.nodes.push_back(w.tb.fp(i));
  for (std::size_t a = 0; a < dw.nodes.size(); ++a)
    for (std::size_t b = a + 1; b < dw.nodes.size(); ++b)
      matrix.set(dw.nodes[a], dw.nodes[b],
                 w.tb.true_rtt_ms(dw.nodes[a], dw.nodes[b]));
  dw.matrix = &matrix;

  // What the attacker knows: the exit (relay 8, index 6 in the universe),
  // its RTT to the exit, and the observed end-to-end RTT.
  AttackerView view;
  view.exit = 6;
  view.exit_to_dst_ms =
      w.tb.net()
          .latency()
          .rtt(w.tb.host_of(w.tb.fp(8)), w.tb.measurement_host(),
               simnet::Protocol::kTcp)
          .ms();
  std::optional<double> observed;
  echo::measure_stream_rtt(w.tb.loop(), w.victim_stream,
                           [&](std::optional<Duration> r) {
                             if (r.has_value()) observed = r->ms();
                           });
  w.tb.loop().run_while_waiting_for([&] { return observed.has_value(); },
                                    Duration::seconds(60));
  ASSERT_TRUE(observed.has_value());
  // The echo target is the attacker itself, so the observed RTT already
  // covers source->exit->destination; no extra r to add.
  view.e2e_ms = *observed;

  CongestionProbeConfig pcfg;
  pcfg.rounds = 4;
  pcfg.burst_spacing = Duration::millis(1);
  pcfg.victim_samples_per_phase = 5;
  int real_probes = 0;
  Rng rng(5);
  const DeanonResult result = deanonymize_with_probe(
      dw, view, Strategy::kInformed, rng, [&](std::size_t node) {
        ++real_probes;
        const CongestionVerdict v =
            congestion_probe(w.tb.ting(), w.victim_stream, dw.nodes[node],
                             pcfg);
        EXPECT_TRUE(v.ok) << v.error;
        return v.on_path;
      });

  ASSERT_TRUE(result.success);
  // The universe indices of the true entry (relay 2) and middle (relay 5).
  EXPECT_EQ(result.identified, (std::set<std::size_t>{2, 4}));
  EXPECT_EQ(result.probes, real_probes);
  EXPECT_LT(result.fraction_probed, 1.0);
}

}  // namespace
}  // namespace ting::analysis
