// Parameterized property tests: invariants swept across seeds, sizes, and
// protocol parameters with TEST_P / INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <set>
#include <tuple>

#include "cells/cell.h"
#include "cells/relay_payload.h"
#include "crypto/handshake.h"
#include "crypto/hash.h"
#include "crypto/x25519.h"
#include "dir/exit_policy.h"
#include "echo/echo.h"
#include "simnet/latency_model.h"
#include "simnet/network.h"
#include "tor/hop_crypto.h"
#include "tor/onion_proxy.h"
#include "tor/relay.h"
#include "util/rng.h"
#include "util/stats.h"

namespace ting {
namespace {

// ---------------------------------------------------------- onion layering

/// Property: for any number of hops, applying all forward layers at the
/// client and removing one per relay yields the original payload, and the
/// rolling digests recognize exactly the addressed hop — across a whole
/// sequence of cells.
class OnionLayersProperty : public ::testing::TestWithParam<int> {};

TEST_P(OnionLayersProperty, SealAndPeelAcrossManyCells) {
  const int hops = GetParam();
  Rng rng(100 + static_cast<std::uint64_t>(hops));

  // Mirrored client/relay hop states from real handshakes.
  std::vector<std::unique_ptr<tor::HopCrypto>> client_side, relay_side;
  for (int h = 0; h < hops; ++h) {
    const crypto::IdentityKeys id = crypto::IdentityKeys::generate(rng);
    const crypto::ClientHandshake ch = crypto::ClientHandshake::start(rng);
    const crypto::RelayHandshakeResult rr =
        crypto::relay_handshake(id, ch.ephemeral_public, rng);
    const auto keys =
        ch.finish(id.public_key, rr.ephemeral_public, rr.keys.auth);
    ASSERT_TRUE(keys.has_value());
    client_side.push_back(std::make_unique<tor::HopCrypto>(*keys));
    relay_side.push_back(std::make_unique<tor::HopCrypto>(rr.keys));
  }

  // Send 20 cells, each addressed to a hop that cycles through the path.
  for (int n = 0; n < 20; ++n) {
    const int target = n % hops;
    cells::RelayPayload p;
    p.command = cells::RelayCommand::kData;
    p.stream_id = static_cast<std::uint16_t>(n);
    p.data = Bytes{static_cast<std::uint8_t>(n), 0xaa};

    Bytes wire = cells::encode_relay(
        p, client_side[static_cast<std::size_t>(target)]->forward_digest());
    for (int h = target; h >= 0; --h)
      client_side[static_cast<std::size_t>(h)]->apply_forward(wire);

    for (int h = 0; h <= target; ++h) {
      relay_side[static_cast<std::size_t>(h)]->apply_forward(wire);
      const auto parsed = cells::try_parse_relay(
          std::span<const std::uint8_t>(wire.data(), wire.size()),
          relay_side[static_cast<std::size_t>(h)]->forward_digest());
      if (h < target) {
        EXPECT_FALSE(parsed.has_value())
            << "hop " << h << " recognized a cell for hop " << target;
      } else {
        ASSERT_TRUE(parsed.has_value());
        EXPECT_EQ(parsed->stream_id, n);
        EXPECT_EQ(parsed->data, p.data);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(HopCounts, OnionLayersProperty,
                         ::testing::Values(1, 2, 3, 4, 6, 8));

// ------------------------------------------------------------------ X25519

class X25519Property : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(X25519Property, DiffieHellmanCommutes) {
  Rng rng(GetParam());
  auto random_key = [&rng]() {
    crypto::X25519Key k;
    for (auto& b : k) b = static_cast<std::uint8_t>(rng.next_u64());
    return k;
  };
  for (int i = 0; i < 10; ++i) {
    const crypto::X25519Key a = random_key(), b = random_key();
    EXPECT_EQ(crypto::x25519(a, crypto::x25519_base(b)),
              crypto::x25519(b, crypto::x25519_base(a)));
  }
}

TEST_P(X25519Property, HandshakeAgreesForSeed) {
  Rng rng(GetParam() ^ 0x5555);
  const crypto::IdentityKeys id = crypto::IdentityKeys::generate(rng);
  const crypto::ClientHandshake ch = crypto::ClientHandshake::start(rng);
  const crypto::RelayHandshakeResult rr =
      crypto::relay_handshake(id, ch.ephemeral_public, rng);
  const auto keys = ch.finish(id.public_key, rr.ephemeral_public,
                              rr.keys.auth);
  ASSERT_TRUE(keys.has_value());
  EXPECT_EQ(keys->forward_key, rr.keys.forward_key);
  EXPECT_EQ(keys->backward_key, rr.keys.backward_key);
}

INSTANTIATE_TEST_SUITE_P(Seeds, X25519Property,
                         ::testing::Values(1u, 7u, 12345u, 0xdeadbeefu,
                                           0xffffffffffffffffull));

// -------------------------------------------------------------------- hash

class HashProperty : public ::testing::TestWithParam<std::size_t> {};

TEST_P(HashProperty, IncrementalMatchesOneShotAtEverySplit) {
  const std::size_t len = GetParam();
  Rng rng(len + 9);
  Bytes msg(len);
  for (auto& b : msg) b = static_cast<std::uint8_t>(rng.next_u64());
  const crypto::Digest whole =
      crypto::hash(std::span<const std::uint8_t>(msg.data(), msg.size()));
  for (std::size_t split : {std::size_t{0}, len / 3, len / 2, len}) {
    crypto::Hasher h;
    h.update(std::span<const std::uint8_t>(msg.data(), split));
    h.update(std::span<const std::uint8_t>(msg.data() + split, len - split));
    EXPECT_EQ(h.finalize(), whole) << "split at " << split;
  }
}

TEST_P(HashProperty, SingleBitFlipChangesDigest) {
  const std::size_t len = GetParam();
  if (len == 0) GTEST_SKIP();
  Bytes msg(len, 0x3c);
  const crypto::Digest base =
      crypto::hash(std::span<const std::uint8_t>(msg.data(), msg.size()));
  msg[len / 2] ^= 0x10;
  EXPECT_NE(crypto::hash(std::span<const std::uint8_t>(msg.data(), msg.size())),
            base);
}

INSTANTIATE_TEST_SUITE_P(Lengths, HashProperty,
                         ::testing::Values(0u, 1u, 23u, 24u, 31u, 32u, 33u,
                                           63u, 64u, 65u, 509u, 4096u));

// ----------------------------------------------------------- latency model

class LatencyModelProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyModelProperty, InvariantsHoldForRandomTopologies) {
  simnet::LatencyConfig cfg;
  cfg.seed = GetParam();
  simnet::LatencyModel model(cfg);
  Rng rng(GetParam() + 1);
  std::vector<simnet::HostId> hosts;
  for (int i = 0; i < 12; ++i)
    hosts.push_back(model.add_host(
        {rng.uniform(-60.0, 70.0), rng.uniform(-180.0, 180.0)}));

  for (std::size_t i = 0; i < hosts.size(); ++i) {
    for (std::size_t j = 0; j < hosts.size(); ++j) {
      const Duration rtt = model.base_rtt(hosts[i], hosts[j]);
      // Symmetry and determinism.
      EXPECT_EQ(rtt, model.base_rtt(hosts[j], hosts[i]));
      EXPECT_EQ(rtt, model.base_rtt(hosts[i], hosts[j]));
      EXPECT_GT(rtt.ns(), 0);
      if (i == j) continue;
      // Speed-of-light floor and inflation ceiling.
      const double floor_ms = geo::min_rtt_ms_for_distance(
          geo::great_circle_km(model.location(hosts[i]),
                               model.location(hosts[j])));
      EXPECT_GE(rtt.ms() + 1e-9, std::min(floor_ms, cfg.min_rtt_ms));
      EXPECT_LE(rtt.ms(),
                std::max(floor_ms * cfg.inflation_max, cfg.min_rtt_ms) + 1e-9);
      // Samples never dip below half the protocol RTT.
      for (int s = 0; s < 50; ++s)
        EXPECT_GE(model
                      .sample_one_way(hosts[i], hosts[j],
                                      simnet::Protocol::kTcp, rng)
                      .ms(),
                  model.rtt(hosts[i], hosts[j], simnet::Protocol::kTcp).ms() /
                          2 -
                      1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyModelProperty,
                         ::testing::Values(2u, 33u, 444u, 5555u, 66666u));

// ------------------------------------------------------------- exit policy

struct PolicyCase {
  const char* policy;
  const char* ip;
  std::uint16_t port;
  bool expect_allowed;
};

class ExitPolicyProperty : public ::testing::TestWithParam<PolicyCase> {};

TEST_P(ExitPolicyProperty, MatchesExpectation) {
  const PolicyCase& c = GetParam();
  const dir::ExitPolicy policy = dir::ExitPolicy::parse(c.policy);
  EXPECT_EQ(policy.allows(*IpAddr::parse(c.ip), c.port), c.expect_allowed)
      << c.policy << " vs " << c.ip << ":" << c.port;
}

INSTANTIATE_TEST_SUITE_P(
    Grammar, ExitPolicyProperty,
    ::testing::Values(
        PolicyCase{"accept *:*", "1.2.3.4", 80, true},
        PolicyCase{"reject *:*", "1.2.3.4", 80, false},
        PolicyCase{"accept *:80\nreject *:*", "9.9.9.9", 80, true},
        PolicyCase{"accept *:80\nreject *:*", "9.9.9.9", 81, false},
        PolicyCase{"reject 10.0.0.0/8:*\naccept *:*", "10.200.3.4", 443, false},
        PolicyCase{"reject 10.0.0.0/8:*\naccept *:*", "11.0.0.1", 443, true},
        PolicyCase{"accept 5.6.7.8:4000-5000\nreject *:*", "5.6.7.8", 4500,
                   true},
        PolicyCase{"accept 5.6.7.8:4000-5000\nreject *:*", "5.6.7.8", 5001,
                   false},
        PolicyCase{"accept 5.6.7.8:4000-5000\nreject *:*", "5.6.7.9", 4500,
                   false},
        PolicyCase{"accept 192.168.0.0/16:*", "192.168.255.1", 1, true},
        PolicyCase{"accept 192.168.0.0/16:*", "192.169.0.1", 1, false},
        // Empty policy: implicit default reject.
        PolicyCase{"", "1.1.1.1", 1, false}));

// ------------------------------------------------------------- relay cells

class CellRoundTripProperty
    : public ::testing::TestWithParam<std::tuple<cells::RelayCommand,
                                                 std::size_t>> {};

TEST_P(CellRoundTripProperty, EncodeParsePreservesEverything) {
  const auto [command, data_len] = GetParam();
  Rng rng(data_len + 77);
  cells::RelayPayload p;
  p.command = command;
  p.stream_id = static_cast<std::uint16_t>(rng.next_below(65536));
  p.data.resize(data_len);
  for (auto& b : p.data) b = static_cast<std::uint8_t>(rng.next_u64());

  crypto::Digest seed{};
  seed.fill(3);
  cells::RollingDigest sender(seed), receiver(seed);
  const Bytes wire = cells::encode_relay(p, sender);
  const auto parsed = cells::try_parse_relay(
      std::span<const std::uint8_t>(wire.data(), wire.size()), receiver);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->command, p.command);
  EXPECT_EQ(parsed->stream_id, p.stream_id);
  EXPECT_EQ(parsed->data, p.data);
}

INSTANTIATE_TEST_SUITE_P(
    CommandsAndSizes, CellRoundTripProperty,
    ::testing::Combine(::testing::Values(cells::RelayCommand::kBegin,
                                         cells::RelayCommand::kData,
                                         cells::RelayCommand::kEnd,
                                         cells::RelayCommand::kExtend,
                                         cells::RelayCommand::kExtended),
                       ::testing::Values(std::size_t{0}, std::size_t{1},
                                         std::size_t{100},
                                         cells::kRelayDataMax)));

// --------------------------------------------------- circuits of any length

class CircuitLengthProperty : public ::testing::TestWithParam<int> {};

TEST_P(CircuitLengthProperty, EchoWorksThroughAnyLength) {
  const int hops = GetParam();
  simnet::EventLoop loop;
  simnet::LatencyConfig lc;
  lc.jitter_mean_ms = 0.01;
  lc.jitter_spike_prob = 0;
  simnet::Network net(loop, lc, 600 + static_cast<std::uint64_t>(hops));

  dir::Consensus consensus;
  std::vector<std::unique_ptr<tor::Relay>> relays;
  for (int i = 0; i < hops; ++i) {
    const simnet::HostId h = net.add_host(
        IpAddr(10, static_cast<std::uint8_t>(50 + i), 0, 1),
        {20.0 + 3.0 * i, -70.0 + 4.0 * i});
    tor::RelayConfig rc;
    rc.nickname = "len" + std::to_string(i);
    rc.exit_policy = dir::ExitPolicy::accept_all();
    rc.base_forward_ms = 0.2;
    rc.queue_mean_ms = 0.1;
    relays.push_back(std::make_unique<tor::Relay>(
        net, h, rc, 900 + static_cast<std::uint64_t>(i)));
    consensus.add(relays.back()->descriptor());
  }
  const simnet::HostId op_host = net.add_host(IpAddr(10, 2, 0, 1), {40, -100});
  const simnet::HostId echo_host =
      net.add_host(IpAddr(10, 2, 0, 2), {40, -100.01});
  tor::OnionProxy op(net, op_host, {}, 19);
  op.set_consensus(consensus);
  echo::EchoServer server(net, echo_host);

  std::vector<dir::Fingerprint> path;
  for (const auto& r : relays) path.push_back(r->fingerprint());

  bool built = false;
  const tor::CircuitHandle h = op.build_circuit(
      path, [&](tor::CircuitHandle) { built = true; },
      [&](const std::string& e) { FAIL() << e; });
  loop.run_while_waiting_for([&] { return built; }, Duration::seconds(120));
  ASSERT_TRUE(built);

  bool connected = false;
  auto stream =
      op.open_stream(h, server.endpoint(), [&] { connected = true; }, {});
  loop.run_while_waiting_for([&] { return connected; },
                             Duration::seconds(120));
  ASSERT_TRUE(connected);

  std::string reply;
  stream->set_on_message(
      [&](Bytes data) { reply.assign(data.begin(), data.end()); });
  stream->send(Bytes{'o', 'k'});
  loop.run_while_waiting_for([&] { return !reply.empty(); },
                             Duration::seconds(120));
  EXPECT_EQ(reply, "ok");

  op.close_circuit(h);
  loop.run();
  for (const auto& r : relays) EXPECT_EQ(r->open_circuits(), 0u);
}

INSTANTIATE_TEST_SUITE_P(Lengths, CircuitLengthProperty,
                         ::testing::Values(2, 3, 4, 5, 7, 10));

// ----------------------------------------------------------- rng invariants

class RngProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RngProperty, BoundsAndPermutations) {
  Rng rng(GetParam());
  for (int i = 0; i < 500; ++i) {
    EXPECT_LT(rng.next_below(7), 7u);
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
  std::vector<int> v(20);
  for (int i = 0; i < 20; ++i) v[static_cast<std::size_t>(i)] = i;
  auto sorted = v;
  rng.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
  const auto sample = rng.sample_indices(100, 10);
  EXPECT_EQ(std::set<std::size_t>(sample.begin(), sample.end()).size(), 10u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RngProperty,
                         ::testing::Values(0u, 1u, 42u, 31337u,
                                           0xfedcba9876543210ull));

}  // namespace
}  // namespace ting
