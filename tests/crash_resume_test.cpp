// Crash-safety tests: atomic artifact writes, the scan journal's exact-bit
// round-trip and torn-tail recovery, and the headline guarantee — a
// deterministic sharded scan killed mid-flight and resumed from its journal
// produces a matrix (and half-circuit cache) bit-identical to an
// uninterrupted run, for any shard count.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <string>

#include "scenario/shard_world.h"
#include "ting/half_circuit_cache.h"
#include "ting/rtt_matrix.h"
#include "ting/scan_journal.h"
#include "ting/scheduler.h"
#include "ting/sharded_scan.h"
#include "util/assert.h"
#include "util/atomic_file.h"

namespace ting::meas {
namespace {

std::string temp_path(const std::string& name) {
  return ::testing::TempDir() + "crash_resume_" + name;
}

dir::Fingerprint fp_of(int i) {
  char buf[41];
  std::snprintf(buf, sizeof(buf), "%040x", i);
  return dir::Fingerprint::from_hex(buf);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void append_raw(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::app);
  out << bytes;
}

// ---- util/atomic_file -------------------------------------------------------

TEST(AtomicFileTest, WritesAndReplaces) {
  const std::string path = temp_path("atomic.txt");
  atomic_write_file(path, "first\n");
  EXPECT_EQ(read_file(path), "first\n");
  atomic_write_file(path, "second\n");
  EXPECT_EQ(read_file(path), "second\n");
  std::remove(path.c_str());
}

TEST(AtomicFileTest, ThrowsWhenDirectoryDoesNotExist) {
  EXPECT_THROW(
      atomic_write_file("/nonexistent-ting-dir/never/matrix.csv", "x"),
      CheckError);
}

TEST(AtomicFileTest, SaveCsvSurfacesWriteFailure) {
  // Both persistence paths go through atomic_write_file, so a failing
  // target directory raises instead of silently truncating the artifact.
  RttMatrix m;
  m.set(fp_of(1), fp_of(2), 10.0, TimePoint{}, 5);
  EXPECT_THROW(m.save_csv("/nonexistent-ting-dir/matrix.csv"), CheckError);
  HalfCircuitCache halves;
  halves.store(fp_of(1), fp_of(2), 5.0, TimePoint{}, 5);
  EXPECT_THROW(halves.save_csv("/nonexistent-ting-dir/halves.csv"),
               CheckError);
}

// ---- ScanJournal ------------------------------------------------------------

ScanJournal::Meta meta_of(std::uint64_t seed, std::size_t nodes) {
  ScanJournal::Meta m;
  m.pair_seed = seed;
  m.nodes = nodes;
  return m;
}

TEST(ScanJournalTest, RoundTripsRecordsWithExactBits) {
  const std::string path = temp_path("roundtrip.journal");
  // A value with a noisy mantissa: 6-significant-digit CSV printing would
  // not round-trip it, the journal's bit encoding must.
  const double exact = 123.4567890123456789;
  {
    ScanJournal j(path, ScanJournal::Mode::kFresh, meta_of(42, 8));
    ScanJournal::PairRecord ok;
    ok.a = fp_of(1);
    ok.b = fp_of(2);
    ok.ok = true;
    ok.attempts = 2;
    ok.rtt_ms = exact;
    ok.measured_at = TimePoint::from_ns(123456789);
    ok.samples = 7;
    j.record_pair(ok);

    ScanJournal::PairRecord bad;
    bad.a = fp_of(3);
    bad.b = fp_of(4);
    bad.ok = false;
    bad.attempts = 3;
    bad.error_class = ErrorClass::kPermanent;
    bad.error = "boom, with, commas\nand a newline";
    j.record_pair(bad);

    j.record_half(ScanJournal::HalfRecord{fp_of(9), fp_of(1), 0.25, TimePoint{}, 7});
    j.record_quarantine(
        ScanJournal::QuarantineRecord{fp_of(3), TimePoint::from_ns(10),
                                      TimePoint::from_ns(20), 3, false});
    EXPECT_GE(j.fsyncs(), 5u);  // J + 2 P + H + Q, one fsync each
  }

  ScanJournal j(path, ScanJournal::Mode::kResume, meta_of(42, 8));
  EXPECT_EQ(j.torn_bytes(), 0u);
  EXPECT_EQ(j.records_recovered(), 5u);  // incl. the J metadata line
  ASSERT_EQ(j.pairs().size(), 2u);
  EXPECT_EQ(j.ok_pairs(), 1u);

  const auto& ok = j.pairs().at({fp_of(1), fp_of(2)});
  EXPECT_TRUE(ok.ok);
  EXPECT_EQ(ok.attempts, 2);
  EXPECT_EQ(ok.rtt_ms, exact);  // exact bit equality, not approximate
  EXPECT_EQ(ok.measured_at.ns(), 123456789);
  EXPECT_EQ(ok.samples, 7);

  const auto& bad = j.pairs().at({fp_of(3), fp_of(4)});
  EXPECT_FALSE(bad.ok);
  EXPECT_EQ(bad.error_class, ErrorClass::kPermanent);
  // Sanitized on write: the message stays one CSV field.
  EXPECT_EQ(bad.error, "boom  with  commas and a newline");

  ASSERT_EQ(j.quarantine_records().size(), 1u);
  EXPECT_EQ(j.quarantine_records()[0].failures, 3);

  RttMatrix matrix;
  HalfCircuitCache halves;
  j.restore(matrix, &halves);
  ASSERT_TRUE(matrix.rtt(fp_of(1), fp_of(2)).has_value());
  EXPECT_EQ(*matrix.rtt(fp_of(1), fp_of(2)), exact);
  EXPECT_FALSE(matrix.rtt(fp_of(3), fp_of(4)).has_value());  // failed pair
  EXPECT_EQ(halves.size(), 1u);

  j.remove_file();
  EXPECT_EQ(read_file(path), "");
}

TEST(ScanJournalTest, RecoversFromTornTrailingRecord) {
  const std::string path = temp_path("torn.journal");
  {
    ScanJournal j(path, ScanJournal::Mode::kFresh, meta_of(1, 4));
    for (int i = 0; i < 3; ++i) {
      ScanJournal::PairRecord r;
      r.a = fp_of(10 + i);
      r.b = fp_of(20 + i);
      r.ok = true;
      r.rtt_ms = i;
      j.record_pair(r);
    }
  }
  // The crash artifact: a record that never got its trailing newline.
  append_raw(path, "P,deadbeef,torn-to-shre");

  {
    ScanJournal j(path, ScanJournal::Mode::kResume, meta_of(1, 4));
    EXPECT_EQ(j.records_recovered(), 4u);
    EXPECT_EQ(j.pairs().size(), 3u);
    EXPECT_GT(j.torn_bytes(), 0u);
    // The torn bytes are gone from disk and appends continue cleanly.
    ScanJournal::PairRecord r;
    r.a = fp_of(30);
    r.b = fp_of(31);
    r.ok = true;
    r.rtt_ms = 9.5;
    j.record_pair(r);
  }
  ScanJournal j(path, ScanJournal::Mode::kResume, meta_of(1, 4));
  EXPECT_EQ(j.torn_bytes(), 0u);
  EXPECT_EQ(j.pairs().size(), 4u);
  std::remove(path.c_str());
}

TEST(ScanJournalTest, CorruptRecordInvalidatesEverythingAfterIt) {
  const std::string path = temp_path("corrupt.journal");
  {
    ScanJournal j(path, ScanJournal::Mode::kFresh, meta_of(1, 4));
    for (int i = 0; i < 3; ++i) {
      ScanJournal::PairRecord r;
      r.a = fp_of(10 + i);
      r.b = fp_of(20 + i);
      r.ok = true;
      r.rtt_ms = i;
      j.record_pair(r);
    }
  }
  // Flip one byte inside the second pair record: its checksum no longer
  // matches, so it and the (intact) record after it are both dropped — an
  // append-only log cannot trust anything past the first sign of damage.
  std::string bytes = read_file(path);
  std::size_t line = 0, pos = 0;
  for (; pos < bytes.size() && line < 2; ++pos)
    if (bytes[pos] == '\n') ++line;
  ASSERT_LT(pos + 10, bytes.size());
  bytes[pos + 10] = bytes[pos + 10] == 'x' ? 'y' : 'x';
  atomic_write_file(path, bytes);

  ScanJournal j(path, ScanJournal::Mode::kResume, meta_of(1, 4));
  EXPECT_EQ(j.records_recovered(), 2u);  // meta + first pair
  EXPECT_EQ(j.pairs().size(), 1u);
  EXPECT_GT(j.torn_bytes(), 0u);
  EXPECT_TRUE(j.pairs().contains({fp_of(10), fp_of(20)}));
  std::remove(path.c_str());
}

TEST(ScanJournalTest, ResumeAgainstDifferentScanThrows) {
  const std::string path = temp_path("mismatch.journal");
  { ScanJournal j(path, ScanJournal::Mode::kFresh, meta_of(42, 8)); }
  EXPECT_THROW(ScanJournal(path, ScanJournal::Mode::kResume, meta_of(43, 8)),
               CheckError);
  EXPECT_THROW(ScanJournal(path, ScanJournal::Mode::kResume, meta_of(42, 9)),
               CheckError);
  ScanJournal ok(path, ScanJournal::Mode::kResume, meta_of(42, 8));
  ok.remove_file();
}

TEST(ScanJournalTest, CheckpointsArtifactsAtCadence) {
  const std::string path = temp_path("ckpt.journal");
  const std::string matrix_path = temp_path("ckpt_matrix.csv");
  const std::string halves_path = temp_path("ckpt_halves.csv");
  ScanJournal j(path, ScanJournal::Mode::kFresh, meta_of(1, 4));
  j.enable_checkpoints(matrix_path, halves_path, 2);
  for (int i = 0; i < 5; ++i) {
    ScanJournal::PairRecord r;
    r.a = fp_of(10 + i);
    r.b = fp_of(20 + i);
    r.ok = true;
    r.rtt_ms = 10.0 + i;
    r.samples = 3;
    j.record_pair(r);
  }
  // 5 pair records / every-2 cadence = 2 checkpoints.
  EXPECT_EQ(j.checkpoints_written(), 2u);
  const RttMatrix snap = RttMatrix::load_csv(matrix_path);
  EXPECT_EQ(snap.size(), 4u);  // records 1..4 were on disk at checkpoint 2
  j.checkpoint_now();
  EXPECT_EQ(j.checkpoints_written(), 3u);
  EXPECT_EQ(RttMatrix::load_csv(matrix_path).size(), 5u);
  j.remove_file();
  std::remove(matrix_path.c_str());
  std::remove(halves_path.c_str());
}

// ---- kill-and-resume bit-identity ------------------------------------------

scenario::ShardWorldOptions small_world(std::uint64_t seed) {
  scenario::ShardWorldOptions o;
  o.relays = 10;
  o.scan_nodes = 8;
  o.testbed.seed = seed;
  o.testbed.differential_fraction = 0;
  o.ting.samples = 10;
  return o;
}

void attach_journal_observer(HalfCircuitCache& halves, ScanJournal& journal) {
  halves.set_store_observer([&journal](const dir::Fingerprint& w,
                                       const dir::Fingerprint& relay,
                                       const HalfCircuitCache::Entry& e) {
    journal.record_half(
        ScanJournal::HalfRecord{w, relay, e.rtt_ms, e.measured_at, e.samples});
  });
}

/// Run the scenario for one shard count: reference uninterrupted run, then
/// a journaled run stopped mid-scan (the graceful-shutdown path a SIGKILL
/// test exercises end-to-end in CI), then a --resume-style run restored
/// from the journal. The resumed artifacts must equal the reference's bytes.
void kill_and_resume_bit_identity(std::size_t shards) {
  const scenario::ShardWorldOptions wo = small_world(41);
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);
  ASSERT_EQ(nodes.size(), 8u);
  const std::string journal_path =
      temp_path("kill_w" + std::to_string(shards) + ".journal");

  ShardedScanOptions so;
  so.shards = shards;
  so.pair_seed = 7;

  // Reference: uninterrupted, no journal.
  std::string ref_csv, ref_halves;
  {
    RttMatrix m;
    HalfCircuitCache halves;
    ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
    ShardedScanOptions ref = so;
    ref.half_cache = &halves;
    const ScanReport r = scanner.scan(nodes, m, ref);
    ASSERT_EQ(r.measured, 28u);
    ref_csv = m.to_csv();
    ref_halves = halves.to_csv();
  }

  // Interrupted run: stop flag trips after ~half the pairs resolve.
  std::atomic<bool> stop{false};
  std::atomic<std::size_t> resolved{0};
  {
    RttMatrix m;
    HalfCircuitCache halves;
    ScanJournal journal(journal_path, ScanJournal::Mode::kFresh,
                        meta_of(so.pair_seed, nodes.size()));
    attach_journal_observer(halves, journal);
    ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
    ShardedScanOptions cut = so;
    cut.half_cache = &halves;
    cut.journal = &journal;
    cut.stop = &stop;
    const ScanReport r = scanner.scan(
        nodes, m, cut, [&](std::size_t, std::size_t, const PairResult&) {
          if (resolved.fetch_add(1) + 1 >= 14) stop.store(true);
        });
    ASSERT_TRUE(r.interrupted);
    ASSERT_GT(r.interrupted_pairs, 0u);
    ASSERT_LT(r.measured, 28u);
    ASSERT_GE(journal.ok_pairs(), 14u - shards);  // in-flight drain may add
    EXPECT_EQ(r.measured + r.from_cache + r.failed + r.deferred +
                  r.interrupted_pairs,
              r.pairs_total);
  }

  // Resume: restore matrix + halves from the journal (exact bits, no CSV
  // round-trip), then finish the scan. Artifacts must match the reference.
  {
    RttMatrix m;
    HalfCircuitCache halves;
    ScanJournal journal(journal_path, ScanJournal::Mode::kResume,
                        meta_of(so.pair_seed, nodes.size()));
    ASSERT_GT(journal.ok_pairs(), 0u);
    journal.restore(m, &halves);
    attach_journal_observer(halves, journal);
    ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
    ShardedScanOptions fin = so;
    fin.half_cache = &halves;
    fin.journal = &journal;
    const ScanReport r = scanner.scan(nodes, m, fin);
    EXPECT_FALSE(r.interrupted);
    EXPECT_EQ(r.measured + r.from_cache, 28u);
    EXPECT_GE(r.from_cache, 1u);  // the journaled pairs were skipped
    EXPECT_EQ(m.to_csv(), ref_csv);
    EXPECT_EQ(halves.to_csv(), ref_halves);
    journal.remove_file();
  }
}

TEST(CrashResumeTest, KillAndResumeBitIdenticalSingleShard) {
  kill_and_resume_bit_identity(1);
}

TEST(CrashResumeTest, KillAndResumeBitIdenticalThreeShards) {
  kill_and_resume_bit_identity(3);
}

}  // namespace
}  // namespace ting::meas
