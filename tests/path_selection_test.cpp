// Tests for latency-aware path selection: band sampling, the local-search
// low-RTT optimizer (which should exploit TIVs), anonymity-set estimation,
// and the §5.2.2 length recommendation.
#include <gtest/gtest.h>

#include "analysis/path_selection.h"
#include "analysis/tiv.h"
#include "geo/cities.h"
#include "simnet/latency_model.h"

namespace ting::analysis {
namespace {

struct World {
  std::vector<dir::Fingerprint> fps;
  meas::RttMatrix matrix;

  explicit World(std::size_t n, std::uint64_t seed = 21) {
    simnet::LatencyConfig cfg;
    cfg.seed = seed;
    simnet::LatencyModel model(cfg);
    Rng rng(seed);
    std::vector<simnet::HostId> hosts;
    for (std::size_t i = 0; i < n; ++i) {
      const geo::City& c = geo::sample_city_tor_weighted(rng);
      hosts.push_back(
          model.add_host(geo::jitter_location({c.lat, c.lon}, 15.0, rng)));
      crypto::X25519Key k{};
      k[0] = static_cast<std::uint8_t>(i);
      k[1] = static_cast<std::uint8_t>(i >> 8);
      fps.push_back(dir::Fingerprint::of_identity(k));
    }
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j)
        matrix.set(fps[i], fps[j],
                   model.rtt(hosts[i], hosts[j], simnet::Protocol::kTor).ms());
  }
};

TEST(BandSamplingTest, HitsRespectBandAndAreDistinct) {
  World w(40);
  Rng rng(3);
  BandQuery q;
  q.length = 4;
  q.rtt_lo_ms = 200;
  q.rtt_hi_ms = 300;
  q.want = 15;
  const auto hits = find_circuits_in_band(w.matrix, w.fps, q, rng);
  EXPECT_GT(hits.size(), 0u);
  std::set<std::vector<std::size_t>> uniq;
  for (const auto& h : hits) {
    EXPECT_GE(h.rtt_ms, 200.0);
    EXPECT_LE(h.rtt_ms, 300.0);
    EXPECT_EQ(h.path.size(), 4u);
    EXPECT_TRUE(uniq.insert(h.path).second);
  }
}

TEST(BandSamplingTest, ImpossibleBandReturnsEmpty) {
  World w(20);
  Rng rng(4);
  BandQuery q;
  q.length = 3;
  q.rtt_lo_ms = 0;
  q.rtt_hi_ms = 0.000001;  // nothing is this fast
  q.max_iterations = 2000;
  EXPECT_TRUE(find_circuits_in_band(w.matrix, w.fps, q, rng).empty());
}

TEST(OptimizerTest, BeatsRandomSampling) {
  World w(40);
  Rng rng(5);
  const CircuitSample best = optimize_low_rtt_circuit(w.matrix, w.fps, 4, rng);
  // Compare against the best of 2000 random circuits.
  Rng rng2(6);
  const auto random_samples = sample_circuits(w.matrix, w.fps, 4, 2000, rng2);
  double random_best = 1e18;
  for (const auto& s : random_samples)
    random_best = std::min(random_best, s.rtt_ms);
  EXPECT_LE(best.rtt_ms, random_best);
}

TEST(OptimizerTest, ResultIsLocalOptimum) {
  World w(25);
  Rng rng(7);
  const CircuitSample best =
      optimize_low_rtt_circuit(w.matrix, w.fps, 3, rng, /*restarts=*/4);
  // No single-node replacement improves it.
  const std::set<std::size_t> used(best.path.begin(), best.path.end());
  for (std::size_t pos = 0; pos < best.path.size(); ++pos) {
    for (std::size_t cand = 0; cand < w.fps.size(); ++cand) {
      if (used.contains(cand)) continue;
      std::vector<std::size_t> trial = best.path;
      trial[pos] = cand;
      EXPECT_GE(circuit_rtt_ms(w.matrix, w.fps, trial),
                best.rtt_ms - 1e-9);
    }
  }
}

TEST(OptimizerTest, LongOptimizedCircuitCanBeatShortRandomOnes) {
  // §5.2's message: with RTT knowledge, longer circuits need not be slower
  // than typical short ones.
  World w(50);
  Rng rng(8);
  const CircuitSample five_hop =
      optimize_low_rtt_circuit(w.matrix, w.fps, 5, rng, 6);
  Rng rng2(9);
  const auto random3 = sample_circuits(w.matrix, w.fps, 3, 200, rng2);
  std::vector<double> rtts;
  for (const auto& s : random3) rtts.push_back(s.rtt_ms);
  EXPECT_LT(five_hop.rtt_ms, quantile(rtts, 0.5))
      << "an optimized 5-hop circuit should beat the median random 3-hop";
}

TEST(AnonymitySetTest, OptionsScaleWithLengthInModerateBand) {
  World w(50);
  Rng rng(10);
  const auto c3 =
      circuit_options_in_band(w.matrix, w.fps, 3, 200, 300, 4000, rng);
  const auto c5 =
      circuit_options_in_band(w.matrix, w.fps, 5, 200, 300, 4000, rng);
  ASSERT_TRUE(c3.has_value());
  ASSERT_TRUE(c5.has_value());
  EXPECT_GT(*c5, *c3 * 5);  // Fig 16's orders-of-magnitude growth
}

TEST(AnonymitySetTest, RecommendationPicksRicherLength) {
  World w(50);
  Rng rng(11);
  const auto rec =
      recommend_length_for_band(w.matrix, w.fps, 200, 300, 6, 4000, rng);
  ASSERT_TRUE(rec.has_value());
  EXPECT_GT(rec->length, 3u);  // longer lengths dominate this band
  EXPECT_GT(rec->options, 0.0);
}

TEST(AnonymitySetTest, EmptyBandYieldsNullopt) {
  World w(15);
  Rng rng(12);
  const auto rec = recommend_length_for_band(w.matrix, w.fps, 0.0, 0.0001, 5,
                                             500, rng);
  EXPECT_FALSE(rec.has_value());
}

}  // namespace
}  // namespace ting::analysis
