// Tests for the echo pair and its RTT probes: server correctness, direct
// probe accuracy and failure handling, and the stream probe's timeout path.
#include <gtest/gtest.h>

#include "echo/echo.h"
#include "simnet/network.h"

namespace ting::echo {
namespace {

struct EchoWorld {
  simnet::EventLoop loop;
  simnet::Network net;
  simnet::HostId a, b;

  EchoWorld() : net(loop, quiet(), 41) {
    a = net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
    b = net.add_host(IpAddr(10, 0, 0, 2), {48.9, 2.3});
  }
  static simnet::LatencyConfig quiet() {
    simnet::LatencyConfig c;
    c.jitter_mean_ms = 0.001;
    c.jitter_spike_prob = 0;
    return c;
  }
};

TEST(EchoServerTest, EchoesEveryMessageAndCounts) {
  EchoWorld w;
  EchoServer server(w.net, w.b);
  EXPECT_EQ(server.endpoint().ip, w.net.ip_of(w.b));

  std::vector<std::string> replies;
  w.net.connect(w.a, server.endpoint(), simnet::Protocol::kTcp,
                [&](simnet::ConnPtr conn) {
                  conn->set_on_message([&](Bytes msg) {
                    replies.emplace_back(msg.begin(), msg.end());
                  });
                  conn->send(Bytes{'o', 'n', 'e'});
                  conn->send(Bytes{'t', 'w', 'o'});
                });
  w.loop.run();
  ASSERT_EQ(replies.size(), 2u);
  EXPECT_EQ(replies[0], "one");
  EXPECT_EQ(replies[1], "two");
  EXPECT_EQ(server.echoes(), 2u);
}

TEST(DirectRttTest, MeasuresRoundTripIncludingConnect) {
  EchoWorld w;
  EchoServer server(w.net, w.b);
  std::optional<std::optional<Duration>> result;
  measure_direct_rtt(w.net, w.a, server.endpoint(),
                     [&](std::optional<Duration> r) { result = r; });
  w.loop.run();
  ASSERT_TRUE(result.has_value());
  ASSERT_TRUE(result->has_value());
  // The measured value covers one echo round trip (post-connect).
  const double rtt_ms =
      w.net.latency().rtt(w.a, w.b, simnet::Protocol::kTcp).ms();
  EXPECT_NEAR((*result)->ms(), rtt_ms, 1.0);
}

TEST(DirectRttTest, ReportsFailureWhenNothingListens) {
  EchoWorld w;
  std::optional<std::optional<Duration>> result;
  measure_direct_rtt(w.net, w.a, Endpoint{w.net.ip_of(w.b), 9},
                     [&](std::optional<Duration> r) { result = r; });
  w.loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
}

TEST(DirectRttTest, TimesOutOnCrashedServer) {
  EchoWorld w;
  EchoServer server(w.net, w.b);
  w.net.set_host_down(w.b);
  std::optional<std::optional<Duration>> result;
  measure_direct_rtt(w.net, w.a, server.endpoint(),
                     [&](std::optional<Duration> r) { result = r; },
                     Duration::millis(700));
  w.loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
}

TEST(DirectRttTest, SequentialProbesAreIndependent) {
  EchoWorld w;
  EchoServer server(w.net, w.b);
  std::vector<double> rtts;
  std::function<void()> step = [&]() {
    measure_direct_rtt(w.net, w.a, server.endpoint(),
                       [&](std::optional<Duration> r) {
                         if (r.has_value()) rtts.push_back(r->ms());
                         if (rtts.size() < 5) step();
                       });
  };
  step();
  w.loop.run();
  ASSERT_EQ(rtts.size(), 5u);
  for (double ms : rtts) EXPECT_GT(ms, 0.0);
  EXPECT_EQ(server.echoes(), 5u);
}

}  // namespace
}  // namespace ting::echo
