// Tests for stream-level SENDME flow control: large transfers must respect
// the exit's package window, SENDMEs must flow back and refill it, and the
// transfer must complete intact.
#include <gtest/gtest.h>

#include "dir/consensus.h"
#include "echo/echo.h"
#include "simnet/network.h"
#include "tor/onion_proxy.h"
#include "tor/relay.h"

namespace ting::tor {
namespace {

struct FlowWorld {
  simnet::EventLoop loop;
  simnet::Network net;
  std::vector<std::unique_ptr<Relay>> relays;
  std::unique_ptr<OnionProxy> op;
  std::unique_ptr<echo::EchoServer> echo_server;
  simnet::HostId op_host = 0, echo_host = 0;

  FlowWorld() : net(loop, quiet(), 88) {
    dir::Consensus consensus;
    for (int i = 0; i < 2; ++i) {
      const simnet::HostId h = net.add_host(
          IpAddr(10, static_cast<std::uint8_t>(30 + i), 0, 1),
          {35.0 + 5 * i, -80.0});
      RelayConfig rc;
      rc.nickname = "flow" + std::to_string(i);
      rc.exit_policy = dir::ExitPolicy::accept_all();
      rc.base_forward_ms = 0.2;
      rc.queue_mean_ms = 0.1;
      relays.push_back(std::make_unique<Relay>(net, h, rc, 700 + static_cast<std::uint64_t>(i)));
      consensus.add(relays.back()->descriptor());
    }
    op_host = net.add_host(IpAddr(10, 2, 0, 1), {40, -100});
    echo_host = net.add_host(IpAddr(10, 2, 0, 2), {40, -100.01});
    op = std::make_unique<OnionProxy>(net, op_host, OnionProxyConfig{}, 3);
    op->set_consensus(consensus);
    echo_server = std::make_unique<echo::EchoServer>(net, echo_host);
  }

  static simnet::LatencyConfig quiet() {
    simnet::LatencyConfig c;
    c.jitter_mean_ms = 0.01;
    c.jitter_spike_prob = 0;
    return c;
  }

  OnionProxy::StreamPtr connected_stream() {
    bool built = false;
    CircuitHandle handle = 0;
    op->build_circuit({relays[0]->fingerprint(), relays[1]->fingerprint()},
                      [&](CircuitHandle h) {
                        built = true;
                        handle = h;
                      },
                      {});
    loop.run_while_waiting_for([&] { return built; }, Duration::seconds(60));
    EXPECT_TRUE(built);
    bool connected = false;
    auto stream = op->open_stream(handle, echo_server->endpoint(),
                                  [&] { connected = true; }, {});
    loop.run_while_waiting_for([&] { return connected; },
                               Duration::seconds(60));
    EXPECT_TRUE(connected);
    return stream;
  }
};

TEST(FlowControlTest, SmallTransferNeedsNoSendme) {
  FlowWorld w;
  auto stream = w.connected_stream();
  std::string reply;
  stream->set_on_message(
      [&](Bytes d) { reply.assign(d.begin(), d.end()); });
  stream->send(Bytes{'h', 'i'});
  w.loop.run_while_waiting_for([&] { return !reply.empty(); },
                               Duration::seconds(60));
  EXPECT_EQ(reply, "hi");
  EXPECT_EQ(w.relays[1]->sendmes_received(), 0u);
}

TEST(FlowControlTest, LargeTransferExhaustsWindowAndRecovers) {
  FlowWorld w;
  auto stream = w.connected_stream();

  // 600 cells' worth of echoed data: more than the 500-cell initial window,
  // so the exit must stall until SENDMEs arrive — and the transfer must
  // still complete, in order.
  const std::size_t kCells = 600;
  const std::size_t total = kCells * cells::kRelayDataMax;
  Bytes big(total);
  for (std::size_t i = 0; i < total; ++i)
    big[i] = static_cast<std::uint8_t>(i * 31 + (i >> 8));

  Bytes received;
  received.reserve(total);
  stream->set_on_message([&](Bytes d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  stream->send(big);
  const bool done = w.loop.run_while_waiting_for(
      [&] { return received.size() >= total; }, Duration::seconds(600));
  ASSERT_TRUE(done) << "transfer stalled: got " << received.size() << "/"
                    << total;
  EXPECT_EQ(received, big);
  // The client must have acknowledged at least (600-500)/50 windows; in
  // practice one SENDME per 50 cells consumed.
  EXPECT_GE(w.relays[1]->sendmes_received(), 2u);
  EXPECT_LE(w.relays[1]->sendmes_received(), kCells / 50 + 1);
}

TEST(FlowControlTest, WindowActuallyGatesTheExit) {
  FlowWorld w;
  auto stream = w.connected_stream();

  // Count DATA cells received; stop ACKing by intercepting: we verify the
  // gate indirectly — if the client never consumed cells (no on_message
  // processing → still ACKed internally), the window would only matter
  // when >500 cells are outstanding. Here we check the exact boundary: a
  // transfer of exactly 500 cells completes with at most minimal SENDMEs,
  // one of 501 requires the window refill path.
  const std::size_t kCells = 501;
  const std::size_t total = kCells * cells::kRelayDataMax;
  Bytes big(total, 0x42);
  Bytes received;
  stream->set_on_message([&](Bytes d) {
    received.insert(received.end(), d.begin(), d.end());
  });
  stream->send(big);
  const bool done = w.loop.run_while_waiting_for(
      [&] { return received.size() >= total; }, Duration::seconds(600));
  ASSERT_TRUE(done);
  EXPECT_GE(w.relays[1]->sendmes_received(), 1u);
}

}  // namespace
}  // namespace ting::tor
