// Tests for the paper-scale synthetic daemon environment: seeded runs are
// byte-deterministic, per-pair fault draws are pure functions of the pair
// seed, crash/resume reproduces an uninterrupted run bit-for-bit, and at
// small n the daemon behaves identically (plans, churn, estimates within
// jitter tolerance) over the synthetic and full-fidelity testbed backends.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "scenario/daemon_world.h"
#include "scenario/synthetic_env.h"
#include "ting/daemon.h"
#include "ting/sparse_matrix.h"

namespace ting::scenario {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing file: " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

SyntheticEnvOptions synth_opts(std::uint64_t seed, std::size_t relays,
                               double churn) {
  SyntheticEnvOptions o;
  o.relays = relays;
  o.testbed.seed = seed;
  o.testbed.differential_fraction = 0;
  o.churn.seed = seed + 1;
  o.churn.churn_rate = churn;
  o.churn.rejoin_rate = 0.5;
  return o;
}

meas::DaemonOptions daemon_opts(const std::string& out, std::size_t epochs) {
  meas::DaemonOptions d;
  d.epochs = epochs;
  d.out = out;
  d.seed = 5;
  d.config_tag = "synthetic-test";
  d.half_cache = false;  // no circuits to memoize in a synthetic world
  d.coverage_target = 0.99;
  return d;
}

TEST(SyntheticEnvTest, SeededRunsAreByteDeterministic) {
  const std::string out1 = ::testing::TempDir() + "/synth_det1.tingmx";
  const std::string out2 = ::testing::TempDir() + "/synth_det2.tingmx";
  for (const std::string& out : {out1, out2}) {
    SyntheticEnvOptions so = synth_opts(17, 40, 0.05);
    so.failure_rate = 0.02;
    SyntheticDaemonEnvironment env(so);
    meas::ScanDaemon daemon(env, daemon_opts(out, 3));
    const meas::DaemonReport r = daemon.run();
    EXPECT_FALSE(r.interrupted);
    ASSERT_EQ(r.epochs.size(), 3u);
    EXPECT_GT(r.matrix_pairs, 0u);
    EXPECT_GT(r.matrix_bytes, 0u);
  }
  EXPECT_EQ(read_file(out1), read_file(out2));
}

TEST(SyntheticEnvTest, OutcomesArePureFunctionsOfPairSeed) {
  SyntheticEnvOptions so = synth_opts(23, 12, 0.0);
  so.failure_rate = 0.3;
  SyntheticDaemonEnvironment env(so);
  env.advance_epoch(0);
  const std::vector<dir::Fingerprint> nodes = env.nodes();
  meas::ParallelScanner::PairList pairs;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j) pairs.emplace_back(i, j);

  meas::ScanOptions opt;
  opt.pair_seed = 123;
  meas::RttMatrix m1, m2;
  const meas::ScanReport r1 = env.scan_pairs(nodes, pairs, m1, opt, {});
  const meas::ScanReport r2 = env.scan_pairs(nodes, pairs, m2, opt, {});
  EXPECT_GT(r1.failed, 0u);
  EXPECT_GT(r1.measured, 0u);
  EXPECT_EQ(r1.measured, r2.measured);
  EXPECT_EQ(r1.failed, r2.failed);
  ASSERT_EQ(r1.failed_pairs.size(), r2.failed_pairs.size());
  for (std::size_t k = 0; k < r1.failed_pairs.size(); ++k) {
    EXPECT_EQ(r1.failed_pairs[k].a, r2.failed_pairs[k].a);
    EXPECT_EQ(r1.failed_pairs[k].b, r2.failed_pairs[k].b);
  }
  // Every estimate is identical, sits in [base, base + noise), and a
  // re-scan keyed by the pair (not the plan order) reproduces it.
  for (const auto& [i, j] : pairs) {
    const auto a = m1.rtt(nodes[i], nodes[j]);
    const auto b = m2.rtt(nodes[i], nodes[j]);
    ASSERT_EQ(a.has_value(), b.has_value());
    if (!a.has_value()) continue;
    EXPECT_EQ(*a, *b);
    const double base = env.base_rtt_ms(nodes[i], nodes[j]);
    EXPECT_GE(*a, base);
    EXPECT_LT(*a, base + so.noise_ms);
  }
  // A different pair seed draws a different epoch of jitter.
  meas::ScanOptions other = opt;
  other.pair_seed = 124;
  meas::RttMatrix m3;
  (void)env.scan_pairs(nodes, pairs, m3, other, {});
  bool any_differs = false;
  for (const auto& [i, j] : pairs) {
    const auto a = m1.rtt(nodes[i], nodes[j]);
    const auto c = m3.rtt(nodes[i], nodes[j]);
    if (a.has_value() != c.has_value() ||
        (a.has_value() && *a != *c)) {
      any_differs = true;
      break;
    }
  }
  EXPECT_TRUE(any_differs);
}

TEST(SyntheticEnvTest, StopAndResumeIsByteIdentical) {
  const std::string ref_out = ::testing::TempDir() + "/synth_ref.tingmx";
  const std::string cut_out = ::testing::TempDir() + "/synth_cut.tingmx";
  {
    SyntheticDaemonEnvironment env(synth_opts(31, 30, 0.05));
    meas::ScanDaemon daemon(env, daemon_opts(ref_out, 2));
    EXPECT_FALSE(daemon.run().interrupted);
  }
  {
    SyntheticDaemonEnvironment env(synth_opts(31, 30, 0.05));
    std::atomic<bool> stop{false};
    meas::DaemonOptions opts = daemon_opts(cut_out, 2);
    opts.stop = &stop;
    meas::ScanDaemon daemon(env, opts);
    std::size_t results = 0;
    const meas::DaemonReport r = daemon.run(
        {}, [&](std::size_t, std::size_t, const meas::PairResult&) {
          if (++results == 25) stop.store(true);
        });
    EXPECT_TRUE(r.interrupted);
    ASSERT_EQ(r.epochs.size(), 1u);
    EXPECT_GT(r.epochs[0].scan.interrupted_pairs, 0u);
  }
  {
    SyntheticDaemonEnvironment env(synth_opts(31, 30, 0.05));
    meas::DaemonOptions opts = daemon_opts(cut_out, 2);
    opts.resume = true;
    meas::ScanDaemon daemon(env, opts);
    const meas::DaemonReport r = daemon.run();
    EXPECT_FALSE(r.interrupted);
    EXPECT_GT(r.epochs.front().journal_recovered, 0u);
  }
  EXPECT_EQ(read_file(cut_out), read_file(ref_out));
}

TEST(SyntheticEnvTest, MatchesTestbedEnvironmentAtSmallScale) {
  // Same topology seed, same churn feed: the daemon must see the same
  // consensus sequence and derive the same plans over either backend, and
  // the synthetic estimates must agree with the full simulation's within
  // the jitter + relay-forwarding tolerance.
  const std::uint64_t seed = 47;
  const double churn = 0.1;

  DaemonWorldOptions wo;
  wo.relays = 10;
  wo.testbed.seed = seed;
  wo.testbed.differential_fraction = 0;
  wo.ting.samples = 8;
  wo.churn.seed = seed + 1;
  wo.churn.churn_rate = churn;
  wo.churn.rejoin_rate = 0.5;

  {
    // Both backends enumerate the same relays in the same order.
    TestbedDaemonEnvironment tb(wo);
    SyntheticDaemonEnvironment sy(synth_opts(seed, 10, churn));
    EXPECT_EQ(tb.nodes(), sy.nodes());
  }

  std::vector<meas::EpochStats> tb_epochs, sy_epochs;
  const std::string tb_out = ::testing::TempDir() + "/sanity_tb.tingmx";
  const std::string sy_out = ::testing::TempDir() + "/sanity_sy.tingmx";
  meas::SparseRttMatrix tb_matrix, sy_matrix;
  {
    TestbedDaemonEnvironment env(wo);
    meas::ScanDaemon daemon(env, daemon_opts(tb_out, 3));
    daemon.run([&](const meas::EpochStats& s) { tb_epochs.push_back(s); });
    tb_matrix = daemon.matrix();
  }
  {
    SyntheticDaemonEnvironment env(synth_opts(seed, 10, churn));
    meas::ScanDaemon daemon(env, daemon_opts(sy_out, 3));
    daemon.run([&](const meas::EpochStats& s) { sy_epochs.push_back(s); });
    sy_matrix = daemon.matrix();
  }

  ASSERT_EQ(tb_epochs.size(), sy_epochs.size());
  for (std::size_t e = 0; e < tb_epochs.size(); ++e) {
    const meas::EpochStats& t = tb_epochs[e];
    const meas::EpochStats& s = sy_epochs[e];
    EXPECT_EQ(t.nodes, s.nodes) << "epoch " << e;
    EXPECT_EQ(t.joined, s.joined) << "epoch " << e;
    EXPECT_EQ(t.left, s.left) << "epoch " << e;
    EXPECT_EQ(t.plan.pairs, s.plan.pairs) << "epoch " << e;
    EXPECT_EQ(t.plan.new_pairs, s.plan.new_pairs) << "epoch " << e;
    EXPECT_EQ(t.plan.fresh_pairs, s.plan.fresh_pairs) << "epoch " << e;
    EXPECT_EQ(t.scan.failed, 0u) << "epoch " << e;
    EXPECT_EQ(s.scan.failed, 0u) << "epoch " << e;
  }

  // The two stores cover the same pairs, with estimates within tolerance.
  // The testbed measures through live relays, which adds a few ms of
  // forwarding/processing delay above the shared base-RTT table that the
  // synthetic model intentionally omits, so the bound is looser than the
  // cross-engine one in scheduler_test.
  ASSERT_EQ(tb_matrix.size(), sy_matrix.size());
  const std::vector<dir::Fingerprint> relays = tb_matrix.nodes();
  SyntheticDaemonEnvironment truth(synth_opts(seed, 10, churn));
  for (std::size_t i = 0; i < relays.size(); ++i) {
    for (std::size_t j = i + 1; j < relays.size(); ++j) {
      const auto t = tb_matrix.rtt(relays[i], relays[j]);
      const auto s = sy_matrix.rtt(relays[i], relays[j]);
      ASSERT_EQ(t.has_value(), s.has_value());
      if (!t.has_value()) continue;
      EXPECT_NEAR(*s, *t, std::max(6.0, 0.2 * *t))
          << relays[i].hex() << " x " << relays[j].hex();
      EXPECT_GE(*s, truth.base_rtt_ms(relays[i], relays[j]));
    }
  }
}

}  // namespace
}  // namespace ting::scenario
