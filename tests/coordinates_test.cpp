// Tests for the Vivaldi coordinate baseline: convergence on embeddable
// (metric) latencies, degradation on TIV-bearing matrices, the structural
// impossibility of embedding a TIV, and sparse-observation fitting.
#include <gtest/gtest.h>

#include "analysis/coordinates.h"
#include "analysis/tiv.h"
#include "geo/cities.h"
#include "simnet/latency_model.h"
#include "util/stats.h"

namespace ting::analysis {
namespace {

dir::Fingerprint fp_of(std::uint32_t i) {
  crypto::X25519Key k{};
  k[0] = static_cast<std::uint8_t>(i);
  k[1] = static_cast<std::uint8_t>(i >> 8);
  return dir::Fingerprint::of_identity(k);
}

struct MatrixWorld {
  std::vector<dir::Fingerprint> fps;
  meas::RttMatrix matrix;
};

/// `inflation_spread` = 0 gives a pure metric space (embeddable);
/// larger values create TIVs the embedding cannot express.
MatrixWorld make_world(std::size_t n, double inflation_spread,
                       std::uint64_t seed) {
  simnet::LatencyConfig cfg;
  cfg.seed = seed;
  cfg.inflation_min = 1.3;
  cfg.inflation_max = 1.3 + inflation_spread;
  simnet::LatencyModel model(cfg);
  Rng rng(seed);
  MatrixWorld w;
  std::vector<simnet::HostId> hosts;
  for (std::size_t i = 0; i < n; ++i) {
    const geo::City& c = geo::sample_city_tor_weighted(rng);
    hosts.push_back(
        model.add_host(geo::jitter_location({c.lat, c.lon}, 15.0, rng)));
    w.fps.push_back(fp_of(static_cast<std::uint32_t>(i)));
  }
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = i + 1; j < n; ++j)
      w.matrix.set(w.fps[i], w.fps[j],
                   model.rtt(hosts[i], hosts[j], simnet::Protocol::kTor).ms());
  return w;
}

TEST(VivaldiTest, ConvergesOnMetricLatencies) {
  const MatrixWorld w = make_world(30, 0.0, 5);
  VivaldiSystem vivaldi;
  Rng rng(1);
  vivaldi.fit(w.matrix, w.fps, rng);
  const auto errs = vivaldi.relative_errors(w.matrix);
  ASSERT_FALSE(errs.empty());
  // Scaled great-circle distances embed well in 5 dimensions.
  EXPECT_LT(quantile(errs, 0.5), 0.12);
}

TEST(VivaldiTest, WorseOnTivBearingMatrix) {
  const MatrixWorld metric = make_world(30, 0.0, 6);
  const MatrixWorld tiv = make_world(30, 0.5, 6);
  Rng rng(2);
  VivaldiSystem a, b;
  a.fit(metric.matrix, metric.fps, rng);
  b.fit(tiv.matrix, tiv.fps, rng);
  const double metric_err = quantile(a.relative_errors(metric.matrix), 0.5);
  const double tiv_err = quantile(b.relative_errors(tiv.matrix), 0.5);
  EXPECT_GT(tiv_err, metric_err);
}

TEST(VivaldiTest, EmbeddingCannotExpressTivs) {
  // §5.2.1's structural point: coordinate estimates are Euclidean distances
  // and therefore satisfy the triangle inequality — every real TIV is
  // invisible to the embedding.
  const MatrixWorld w = make_world(25, 0.45, 7);
  const auto true_tivs = find_all_tivs(w.matrix);
  ASSERT_GT(true_tivs.size(), 5u) << "world should contain TIVs";

  VivaldiSystem vivaldi;
  Rng rng(3);
  vivaldi.fit(w.matrix, w.fps, rng);
  meas::RttMatrix estimated;
  for (std::size_t i = 0; i < w.fps.size(); ++i)
    for (std::size_t j = i + 1; j < w.fps.size(); ++j)
      estimated.set(w.fps[i], w.fps[j],
                    vivaldi.estimate_ms(w.fps[i], w.fps[j]));
  // Allow a microscopic tolerance for floating point.
  const auto embedded_tivs = find_all_tivs(estimated);
  std::size_t significant = 0;
  for (const auto& t : embedded_tivs)
    if (t.savings() > 1e-6) ++significant;
  EXPECT_EQ(significant, 0u);
}

TEST(VivaldiTest, SparseObservationsStillFitCoarsely) {
  const MatrixWorld w = make_world(40, 0.0, 8);
  VivaldiSystem vivaldi;
  Rng rng(4);
  vivaldi.fit(w.matrix, w.fps, rng, /*sample_fraction=*/0.3);
  const auto errs = vivaldi.relative_errors(w.matrix);
  ASSERT_FALSE(errs.empty());
  EXPECT_LT(quantile(errs, 0.5), 0.30);  // coarser, but usable — §2's trade
}

TEST(VivaldiTest, EstimateRequiresFittedNodes) {
  const MatrixWorld w = make_world(6, 0.0, 9);
  VivaldiSystem vivaldi;
  Rng rng(5);
  vivaldi.fit(w.matrix, w.fps, rng);
  EXPECT_TRUE(vivaldi.has(w.fps[0]));
  EXPECT_FALSE(vivaldi.has(fp_of(9999)));
  EXPECT_THROW(vivaldi.estimate_ms(w.fps[0], fp_of(9999)), CheckError);
  EXPECT_GT(vivaldi.estimate_ms(w.fps[0], w.fps[1]), 0.0);
}

}  // namespace
}  // namespace ting::analysis
