// Tests for the directory substrate: fingerprints, exit-policy grammar and
// matching, descriptor/consensus round-trips, bandwidth-weighted sampling,
// and the networked authority.
#include <gtest/gtest.h>

#include "dir/authority.h"
#include "dir/consensus.h"
#include "dir/descriptor.h"
#include "dir/exit_policy.h"
#include "dir/fingerprint.h"
#include "simnet/network.h"

namespace ting::dir {
namespace {

crypto::X25519Key key_filled(std::uint8_t b) {
  crypto::X25519Key k;
  k.fill(b);
  return k;
}

RelayDescriptor make_desc(const std::string& nick, std::uint8_t seed,
                          std::uint32_t bandwidth = 100) {
  RelayDescriptor d;
  d.nickname = nick;
  d.onion_key = key_filled(seed);
  d.fingerprint = Fingerprint::of_identity(d.onion_key);
  d.address = IpAddr(10, 0, seed, 1);
  d.or_port = 9001;
  d.bandwidth = bandwidth;
  d.country_code = "DE";
  return d;
}

// ------------------------------------------------------------- Fingerprint

TEST(FingerprintTest, DerivationIsDeterministicAndDistinct) {
  EXPECT_EQ(Fingerprint::of_identity(key_filled(1)),
            Fingerprint::of_identity(key_filled(1)));
  EXPECT_NE(Fingerprint::of_identity(key_filled(1)),
            Fingerprint::of_identity(key_filled(2)));
}

TEST(FingerprintTest, HexRoundTripWithDollarPrefix) {
  const Fingerprint f = Fingerprint::of_identity(key_filled(9));
  EXPECT_EQ(f.hex().size(), 40u);
  EXPECT_EQ(Fingerprint::from_hex(f.hex()), f);
  EXPECT_EQ(Fingerprint::from_hex("$" + f.hex()), f);
  EXPECT_EQ(f.short_name(), f.hex().substr(0, 8));
}

TEST(FingerprintTest, RejectsMalformedHex) {
  EXPECT_THROW(Fingerprint::from_hex("abcd"), CheckError);
  EXPECT_THROW(Fingerprint::from_hex(std::string(40, 'z')), CheckError);
}

// -------------------------------------------------------------- ExitPolicy

TEST(ExitPolicyTest, ParseAndMatchBasics) {
  const PolicyRule r = PolicyRule::parse("accept 10.1.2.3:80");
  EXPECT_TRUE(r.accept);
  EXPECT_TRUE(r.matches(IpAddr(10, 1, 2, 3), 80));
  EXPECT_FALSE(r.matches(IpAddr(10, 1, 2, 3), 81));
  EXPECT_FALSE(r.matches(IpAddr(10, 1, 2, 4), 80));
}

TEST(ExitPolicyTest, WildcardsAndRanges) {
  const PolicyRule any = PolicyRule::parse("reject *:*");
  EXPECT_TRUE(any.matches(IpAddr(1, 2, 3, 4), 1));
  const PolicyRule range = PolicyRule::parse("accept *:80-443");
  EXPECT_TRUE(range.matches(IpAddr(8, 8, 8, 8), 80));
  EXPECT_TRUE(range.matches(IpAddr(8, 8, 8, 8), 443));
  EXPECT_FALSE(range.matches(IpAddr(8, 8, 8, 8), 444));
}

TEST(ExitPolicyTest, PrefixMatching) {
  const PolicyRule r = PolicyRule::parse("accept 10.1.0.0/16:*");
  EXPECT_TRUE(r.matches(IpAddr(10, 1, 200, 9), 12345));
  EXPECT_FALSE(r.matches(IpAddr(10, 2, 0, 1), 12345));
}

TEST(ExitPolicyTest, FirstMatchWinsAndDefaultRejects) {
  const ExitPolicy p = ExitPolicy::parse(
      "reject 10.0.0.0/8:*\n"
      "accept *:80\n");
  EXPECT_FALSE(p.allows(IpAddr(10, 5, 5, 5), 80));  // first rule wins
  EXPECT_TRUE(p.allows(IpAddr(8, 8, 8, 8), 80));
  EXPECT_FALSE(p.allows(IpAddr(8, 8, 8, 8), 81));  // implicit default reject
}

TEST(ExitPolicyTest, AcceptOnlyMatchesPaperTestbedPolicy) {
  // §4.1: "a restrictive exit policy that only allowed exiting to two
  // specific IP addresses under our control".
  const ExitPolicy p =
      ExitPolicy::accept_only({IpAddr(5, 6, 7, 8), IpAddr(5, 6, 7, 9)});
  EXPECT_TRUE(p.allows(IpAddr(5, 6, 7, 8), 4242));
  EXPECT_TRUE(p.allows(IpAddr(5, 6, 7, 9), 1));
  EXPECT_FALSE(p.allows(IpAddr(5, 6, 7, 10), 4242));
  EXPECT_TRUE(p.allows_anything());
  EXPECT_FALSE(ExitPolicy::reject_all().allows_anything());
}

TEST(ExitPolicyTest, RoundTripThroughText) {
  const ExitPolicy p = ExitPolicy::parse(
      "accept 10.1.0.0/16:80-443\nreject *:*");
  const ExitPolicy q = ExitPolicy::parse(p.str());
  EXPECT_EQ(p.str(), q.str());
  EXPECT_TRUE(q.allows(IpAddr(10, 1, 3, 4), 100));
  EXPECT_FALSE(q.allows(IpAddr(10, 1, 3, 4), 22));
}

TEST(ExitPolicyTest, RejectsBadSyntax) {
  EXPECT_THROW(PolicyRule::parse("allow *:*"), CheckError);
  EXPECT_THROW(PolicyRule::parse("accept *"), CheckError);
  EXPECT_THROW(PolicyRule::parse("accept 1.2.3.4:99999"), CheckError);
  EXPECT_THROW(PolicyRule::parse("accept 1.2.3.4/40:*"), CheckError);
}

// -------------------------------------------------------------- Descriptor

TEST(DescriptorTest, SerializeParseRoundTrip) {
  RelayDescriptor d = make_desc("alpha", 3, 2500);
  d.flags = kFlagRunning | kFlagValid | kFlagGuard | kFlagExit;
  d.exit_policy = ExitPolicy::accept_only({IpAddr(5, 6, 7, 8)});
  d.reverse_dns = "host-3.example-isp.de";

  const RelayDescriptor e = RelayDescriptor::parse(d.serialize());
  EXPECT_EQ(e.nickname, "alpha");
  EXPECT_EQ(e.fingerprint, d.fingerprint);
  EXPECT_EQ(e.onion_key, d.onion_key);
  EXPECT_EQ(e.address, d.address);
  EXPECT_EQ(e.or_port, d.or_port);
  EXPECT_EQ(e.bandwidth, 2500u);
  EXPECT_EQ(e.flags, d.flags);
  EXPECT_EQ(e.country_code, "DE");
  EXPECT_EQ(e.reverse_dns, d.reverse_dns);
  EXPECT_TRUE(e.exit_policy.allows(IpAddr(5, 6, 7, 8), 4242));
  EXPECT_FALSE(e.exit_policy.allows(IpAddr(9, 9, 9, 9), 4242));
}

TEST(DescriptorTest, FlagsRoundTrip) {
  EXPECT_EQ(flags_from_str(flags_str(kFlagRunning | kFlagExit)),
            kFlagRunning | kFlagExit);
  EXPECT_EQ(flags_from_str("Guard Fast"), kFlagGuard | kFlagFast);
  EXPECT_THROW(flags_from_str("Bogus"), CheckError);
}

TEST(DescriptorTest, ParseRejectsTruncated) {
  EXPECT_THROW(RelayDescriptor::parse("router a 1.2.3.4 9001\n"), CheckError);
}

// --------------------------------------------------------------- Consensus

TEST(ConsensusTest, AddFindRemove) {
  Consensus c;
  c.add(make_desc("a", 1));
  c.add(make_desc("b", 2));
  EXPECT_EQ(c.size(), 2u);
  const RelayDescriptor* a = c.find_nickname("a");
  ASSERT_NE(a, nullptr);
  const Fingerprint fp_a = a->fingerprint;  // copy: remove() invalidates a
  EXPECT_NE(c.find(fp_a), nullptr);
  EXPECT_TRUE(c.remove(fp_a));
  EXPECT_FALSE(c.remove(fp_a));
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.find(fp_a), nullptr);
  EXPECT_NE(c.find_nickname("b"), nullptr);
}

TEST(ConsensusTest, AddRefreshesExisting) {
  Consensus c;
  c.add(make_desc("a", 1, 100));
  RelayDescriptor updated = make_desc("a", 1, 999);
  c.add(updated);
  EXPECT_EQ(c.size(), 1u);
  EXPECT_EQ(c.find(updated.fingerprint)->bandwidth, 999u);
}

TEST(ConsensusTest, SerializeParseRoundTrip) {
  Consensus c;
  for (std::uint8_t i = 1; i <= 5; ++i)
    c.add(make_desc("relay" + std::to_string(i), i, 100u * i));
  const Consensus d = Consensus::parse(c.serialize());
  EXPECT_EQ(d.size(), 5u);
  EXPECT_EQ(d.total_bandwidth(), c.total_bandwidth());
  EXPECT_NE(d.find_nickname("relay3"), nullptr);
}

TEST(ConsensusTest, WeightedSamplingFollowsBandwidth) {
  Consensus c;
  c.add(make_desc("light", 1, 100));
  c.add(make_desc("heavy", 2, 900));
  Rng rng(5);
  int heavy = 0;
  for (int i = 0; i < 5000; ++i)
    if (c.sample_weighted(rng)->nickname == "heavy") ++heavy;
  EXPECT_NEAR(heavy / 5000.0, 0.9, 0.03);
}

TEST(ConsensusTest, WeightedSamplingHonoursFlags) {
  Consensus c;
  RelayDescriptor guard = make_desc("guard", 1);
  guard.flags |= kFlagGuard;
  c.add(guard);
  c.add(make_desc("plain", 2));
  Rng rng(6);
  for (int i = 0; i < 100; ++i)
    EXPECT_EQ(c.sample_weighted(rng, kFlagGuard)->nickname, "guard");
  Consensus empty;
  EXPECT_EQ(empty.sample_weighted(rng), nullptr);
}

// --------------------------------------------------------------- Authority

TEST(AuthorityTest, PublishAndFetchOverNetwork) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 7);
  const simnet::HostId auth_host =
      net.add_host(IpAddr(10, 0, 0, 1), {50.0, 8.0});
  const simnet::HostId relay_host =
      net.add_host(IpAddr(10, 0, 0, 2), {48.0, 2.0});
  const simnet::HostId client_host =
      net.add_host(IpAddr(10, 0, 0, 3), {52.0, 13.0});

  Authority authority(net, auth_host);
  Authority::publish(net, relay_host, authority.endpoint(), make_desc("pub", 7));
  loop.run();
  EXPECT_EQ(authority.consensus().size(), 1u);

  bool fetched = false;
  Authority::fetch_consensus(net, client_host, authority.endpoint(),
                             [&](Consensus c) {
                               fetched = true;
                               EXPECT_EQ(c.size(), 1u);
                               EXPECT_NE(c.find_nickname("pub"), nullptr);
                             });
  loop.run();
  EXPECT_TRUE(fetched);
}

TEST(AuthorityTest, InjectBypassesNetwork) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 8);
  const simnet::HostId h = net.add_host(IpAddr(10, 0, 0, 1), {0, 0});
  Authority authority(net, h);
  authority.inject(make_desc("injected", 4));
  EXPECT_NE(authority.consensus().find_nickname("injected"), nullptr);
}

}  // namespace
}  // namespace ting::dir
