// Tests for the cell codec: fixed-size framing, relay payload recognition
// semantics (recognized field + rolling digest), and the EXTEND/BEGIN body
// encodings.
#include <gtest/gtest.h>

#include "cells/cell.h"
#include "cells/relay_payload.h"
#include "util/assert.h"

namespace ting::cells {
namespace {

crypto::Digest seed_digest(std::uint8_t fill) {
  crypto::Digest d;
  d.fill(fill);
  return d;
}

TEST(CellTest, EncodeDecodeRoundTrip) {
  Cell c = Cell::make(0x12345678, CellCommand::kCreate, Bytes{1, 2, 3});
  const Bytes wire = c.encode();
  EXPECT_EQ(wire.size(), kCellSize);
  const Cell d = Cell::decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
  EXPECT_EQ(d.circ_id, 0x12345678u);
  EXPECT_EQ(d.command, CellCommand::kCreate);
  EXPECT_EQ(d.payload.size(), kPayloadSize);
  EXPECT_EQ(d.payload[0], 1);
  EXPECT_EQ(d.payload[2], 3);
  EXPECT_EQ(d.payload[3], 0);  // zero padding
}

TEST(CellTest, DecodeRejectsWrongSize) {
  Bytes short_wire(100, 0);
  EXPECT_THROW(Cell::decode(std::span<const std::uint8_t>(short_wire.data(),
                                                          short_wire.size())),
               CheckError);
}

TEST(CellTest, OversizedPayloadRejected) {
  Cell c;
  c.payload.resize(kPayloadSize + 1);
  EXPECT_THROW(c.normalize(), CheckError);
}

TEST(CellTest, CommandNames) {
  EXPECT_EQ(command_name(CellCommand::kRelay), "RELAY");
  EXPECT_EQ(command_name(CellCommand::kDestroy), "DESTROY");
}

TEST(RelayPayloadTest, EncodeThenParseRecognizes) {
  RollingDigest sender(seed_digest(1));
  RollingDigest receiver(seed_digest(1));
  RelayPayload p;
  p.command = RelayCommand::kData;
  p.stream_id = 42;
  p.data = Bytes{'h', 'e', 'l', 'l', 'o'};
  const Bytes wire = encode_relay(p, sender);
  EXPECT_EQ(wire.size(), kPayloadSize);
  const auto parsed = try_parse_relay(
      std::span<const std::uint8_t>(wire.data(), wire.size()), receiver);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->command, RelayCommand::kData);
  EXPECT_EQ(parsed->stream_id, 42);
  EXPECT_EQ(parsed->data, p.data);
}

TEST(RelayPayloadTest, DigestChainsAcrossCells) {
  RollingDigest sender(seed_digest(2));
  RollingDigest receiver(seed_digest(2));
  for (int i = 0; i < 10; ++i) {
    RelayPayload p;
    p.command = RelayCommand::kData;
    p.stream_id = static_cast<std::uint16_t>(i);
    p.data = Bytes{static_cast<std::uint8_t>(i)};
    const Bytes wire = encode_relay(p, sender);
    const auto parsed = try_parse_relay(
        std::span<const std::uint8_t>(wire.data(), wire.size()), receiver);
    ASSERT_TRUE(parsed.has_value()) << "cell " << i;
    EXPECT_EQ(parsed->stream_id, i);
  }
}

TEST(RelayPayloadTest, WrongSeedNotRecognized) {
  RollingDigest sender(seed_digest(3));
  RollingDigest receiver(seed_digest(4));
  RelayPayload p;
  p.command = RelayCommand::kData;
  const Bytes wire = encode_relay(p, sender);
  EXPECT_FALSE(try_parse_relay(
                   std::span<const std::uint8_t>(wire.data(), wire.size()),
                   receiver)
                   .has_value());
}

TEST(RelayPayloadTest, MissedCellBreaksChain) {
  RollingDigest sender(seed_digest(5));
  RollingDigest receiver(seed_digest(5));
  RelayPayload p;
  p.command = RelayCommand::kData;
  (void)encode_relay(p, sender);              // cell receiver never sees
  const Bytes second = encode_relay(p, sender);
  EXPECT_FALSE(try_parse_relay(std::span<const std::uint8_t>(second.data(),
                                                             second.size()),
                               receiver)
                   .has_value());
}

TEST(RelayPayloadTest, FailedParseDoesNotAdvanceDigest) {
  RollingDigest sender(seed_digest(6));
  RollingDigest receiver(seed_digest(6));
  RelayPayload p;
  p.command = RelayCommand::kData;
  p.data = Bytes{9};
  const Bytes wire = encode_relay(p, sender);
  // Feed garbage first (encrypted-looking payload with nonzero recognized).
  Bytes garbage(kPayloadSize, 0xaa);
  EXPECT_FALSE(try_parse_relay(std::span<const std::uint8_t>(garbage.data(),
                                                             garbage.size()),
                               receiver)
                   .has_value());
  // The real cell must still be recognized: trial absorption must not have
  // mutated the receiver state.
  EXPECT_TRUE(try_parse_relay(
                  std::span<const std::uint8_t>(wire.data(), wire.size()),
                  receiver)
                  .has_value());
}

TEST(RelayPayloadTest, CorruptedDataNotRecognized) {
  RollingDigest sender(seed_digest(7));
  RollingDigest receiver(seed_digest(7));
  RelayPayload p;
  p.command = RelayCommand::kData;
  p.data = Bytes{1, 2, 3};
  Bytes wire = encode_relay(p, sender);
  wire[20] ^= 0xff;
  EXPECT_FALSE(try_parse_relay(
                   std::span<const std::uint8_t>(wire.data(), wire.size()),
                   receiver)
                   .has_value());
}

TEST(RelayPayloadTest, MaxSizedDataFits) {
  RollingDigest sender(seed_digest(8));
  RollingDigest receiver(seed_digest(8));
  RelayPayload p;
  p.command = RelayCommand::kData;
  p.data = Bytes(kRelayDataMax, 0x5a);
  const Bytes wire = encode_relay(p, sender);
  const auto parsed = try_parse_relay(
      std::span<const std::uint8_t>(wire.data(), wire.size()), receiver);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->data.size(), kRelayDataMax);

  RelayPayload too_big;
  too_big.data = Bytes(kRelayDataMax + 1, 0);
  RollingDigest d(seed_digest(9));
  EXPECT_THROW(encode_relay(too_big, d), CheckError);
}

TEST(ExtendBodiesTest, ExtendRequestRoundTrip) {
  ExtendRequest req;
  req.address = IpAddr(10, 1, 2, 3);
  req.or_port = 9001;
  for (std::size_t i = 0; i < req.fingerprint.size(); ++i)
    req.fingerprint[i] = static_cast<std::uint8_t>(i);
  for (std::size_t i = 0; i < req.client_public.size(); ++i)
    req.client_public[i] = static_cast<std::uint8_t>(100 + i);
  const Bytes wire = req.encode();
  const ExtendRequest back =
      ExtendRequest::decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
  EXPECT_EQ(back.address, req.address);
  EXPECT_EQ(back.or_port, req.or_port);
  EXPECT_EQ(back.fingerprint, req.fingerprint);
  EXPECT_EQ(back.client_public, req.client_public);
}

TEST(ExtendBodiesTest, ExtendedReplyRoundTrip) {
  ExtendedReply rep;
  rep.relay_public.fill(7);
  rep.auth.fill(8);
  const Bytes wire = rep.encode();
  const ExtendedReply back =
      ExtendedReply::decode(std::span<const std::uint8_t>(wire.data(), wire.size()));
  EXPECT_EQ(back.relay_public, rep.relay_public);
  EXPECT_EQ(back.auth, rep.auth);
}

TEST(BeginBodyTest, RoundTripAndRejects) {
  const Endpoint ep{IpAddr(192, 168, 7, 9), 4242};
  const Bytes wire = encode_begin(ep);
  const auto back =
      decode_begin(std::span<const std::uint8_t>(wire.data(), wire.size()));
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, ep);

  const Bytes bad{'x', 'y', 'z'};
  EXPECT_FALSE(
      decode_begin(std::span<const std::uint8_t>(bad.data(), bad.size()))
          .has_value());
}

}  // namespace
}  // namespace ting::cells
