// Tests for the serving layer: snapshot fidelity against both matrix
// stores, detour-index correctness (full build, incremental update, and the
// counters the TIV statistics come from), PathServer query semantics, and
// the lock-free publish/read contract under concurrency (the TSan leg).
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "serve/detour_index.h"
#include "serve/path_server.h"
#include "serve/snapshot.h"
#include "ting/rtt_matrix.h"
#include "ting/sparse_matrix.h"
#include "util/rng.h"

namespace ting::serve {
namespace {

dir::Fingerprint fp_of(std::uint32_t i) {
  crypto::X25519Key k{};
  k[0] = static_cast<std::uint8_t>(i);
  k[1] = static_cast<std::uint8_t>(i >> 8);
  return dir::Fingerprint::of_identity(k);
}

/// A random symmetric matrix with enough spread that TIVs occur, and an
/// optional fraction of pairs left unmeasured.
struct World {
  std::vector<dir::Fingerprint> fps;
  meas::RttMatrix matrix;

  explicit World(std::size_t n, std::uint64_t seed = 7,
                 double missing_fraction = 0.0) {
    Rng rng(seed);
    for (std::size_t i = 0; i < n; ++i)
      fps.push_back(fp_of(static_cast<std::uint32_t>(i)));
    for (std::size_t i = 0; i < n; ++i)
      for (std::size_t j = i + 1; j < n; ++j) {
        if (rng.uniform(0.0, 1.0) < missing_fraction) continue;
        matrix.set(fps[i], fps[j], rng.uniform(20.0, 400.0));
      }
  }
};

// ---------------------------------------------------------------- snapshot

TEST(SnapshotTest, MirrorsDenseMatrix) {
  World w(15, 1);
  const MatrixSnapshot snap = MatrixSnapshot::build(w.matrix, 3);
  EXPECT_EQ(snap.node_count(), 15u);
  EXPECT_EQ(snap.epoch(), 3u);
  EXPECT_EQ(snap.pair_count(), w.matrix.size());
  EXPECT_DOUBLE_EQ(snap.coverage(), 1.0);
  for (std::size_t i = 0; i < w.fps.size(); ++i)
    for (std::size_t j = 0; j < w.fps.size(); ++j) {
      const auto truth = w.matrix.rtt(w.fps[i], w.fps[j]);
      const auto got = snap.rtt(w.fps[i], w.fps[j]);
      ASSERT_EQ(truth.has_value(), got.has_value());
      if (truth.has_value()) {
        EXPECT_DOUBLE_EQ(*truth, *got);
      }
    }
}

TEST(SnapshotTest, SparseAndDenseBuildsAgree) {
  World w(12, 2, /*missing_fraction=*/0.3);
  const meas::SparseRttMatrix sparse =
      meas::SparseRttMatrix::from_rtt_matrix(w.matrix);
  const MatrixSnapshot from_dense = MatrixSnapshot::build(w.matrix);
  const MatrixSnapshot from_sparse = MatrixSnapshot::build(sparse);
  ASSERT_EQ(from_dense.node_count(), from_sparse.node_count());
  EXPECT_EQ(from_dense.pair_count(), from_sparse.pair_count());
  EXPECT_LT(from_dense.coverage(), 1.0);
  const std::size_t n = from_dense.node_count();
  for (std::size_t i = 0; i < n; ++i) {
    EXPECT_EQ(from_dense.node(i), from_sparse.node(i));
    for (std::size_t j = 0; j < n; ++j) {
      EXPECT_EQ(from_dense.has(i, j), from_sparse.has(i, j));
      if (from_dense.has(i, j)) {
        EXPECT_DOUBLE_EQ(from_dense.rtt_raw(i, j), from_sparse.rtt_raw(i, j));
      }
    }
  }
}

TEST(SnapshotTest, Float32StorageMatchesFloat64Queries) {
  World w(20, 14, /*missing_fraction=*/0.3);
  const MatrixSnapshot wide = MatrixSnapshot::build(w.matrix, 2);
  const MatrixSnapshot narrow = MatrixSnapshot::build(
      w.matrix, 2, TimePoint{}, SnapshotStorage::kFloat32);
  EXPECT_EQ(wide.storage(), SnapshotStorage::kFloat64);
  EXPECT_EQ(narrow.storage(), SnapshotStorage::kFloat32);
  ASSERT_EQ(narrow.node_count(), wide.node_count());
  EXPECT_EQ(narrow.pair_count(), wide.pair_count());
  EXPECT_DOUBLE_EQ(narrow.coverage(), wide.coverage());
  const std::size_t n = wide.node_count();
  for (std::size_t i = 0; i < n; ++i)
    for (std::size_t j = 0; j < n; ++j) {
      // Presence (NaN coding) survives the narrowing exactly; values agree
      // to float32 rounding — ≤6e-8 relative, far below measurement noise.
      ASSERT_EQ(narrow.has(i, j), wide.has(i, j));
      if (!wide.has(i, j)) continue;
      const double a = wide.rtt_raw(i, j), b = narrow.rtt_raw(i, j);
      EXPECT_NEAR(b, a, std::abs(a) * 1e-6);
    }
  // Path sums stay within the same tolerance.
  for (std::size_t a = 0; a + 2 < n; ++a) {
    const std::vector<std::size_t> path{a, a + 1, a + 2};
    const auto pw = wide.path_rtt_ms(path);
    const auto pn = narrow.path_rtt_ms(path);
    ASSERT_EQ(pw.has_value(), pn.has_value());
    if (pw.has_value()) {
      EXPECT_NEAR(*pn, *pw, std::abs(*pw) * 1e-6);
    }
  }
}

TEST(SnapshotTest, Float32StorageHalvesTheArray) {
  World w(64, 15);
  const MatrixSnapshot wide = MatrixSnapshot::build(w.matrix);
  const MatrixSnapshot narrow = MatrixSnapshot::build(
      w.matrix, 0, TimePoint{}, SnapshotStorage::kFloat32);
  // The n×n array dominates the footprint; the fingerprint index is shared
  // overhead, so the ratio lands between 0.5 and ~0.75.
  EXPECT_LT(narrow.memory_bytes(), wide.memory_bytes() * 3 / 4);
  EXPECT_GE(narrow.memory_bytes(), wide.memory_bytes() / 2);
}

TEST(PathServerTest, Float32PublishServesParityQueries) {
  World w(16, 17, /*missing_fraction=*/0.2);
  ServeOptions so;
  so.float32_snapshot = true;
  PathServer narrow(so), wide;
  narrow.publish(w.matrix);
  wide.publish(w.matrix);
  ASSERT_TRUE(narrow.ready());
  EXPECT_EQ(narrow.state()->snapshot.storage(), SnapshotStorage::kFloat32);
  EXPECT_EQ(wide.state()->snapshot.storage(), SnapshotStorage::kFloat64);
  for (std::size_t i = 0; i < w.fps.size(); ++i)
    for (std::size_t j = i + 1; j < w.fps.size(); ++j) {
      const auto a = wide.rtt(w.fps[i], w.fps[j]);
      const auto b = narrow.rtt(w.fps[i], w.fps[j]);
      ASSERT_EQ(a.has_value(), b.has_value());
      if (a.has_value()) {
        EXPECT_NEAR(*b, *a, std::abs(*a) * 1e-6);
      }
    }
  const auto cw = wide.fastest_through(w.fps[5], 4);
  const auto cn = narrow.fastest_through(w.fps[5], 4);
  ASSERT_EQ(cw.size(), cn.size());
  for (std::size_t k = 0; k < cw.size(); ++k) {
    EXPECT_EQ(cw[k].relays, cn[k].relays);
    EXPECT_NEAR(cn[k].rtt_ms, cw[k].rtt_ms, cw[k].rtt_ms * 1e-6);
  }
}

TEST(SnapshotTest, PathRttHandlesMissingHops) {
  World w(10, 3, /*missing_fraction=*/0.5);
  const MatrixSnapshot snap = MatrixSnapshot::build(w.matrix);
  std::size_t complete = 0, incomplete = 0;
  for (std::size_t a = 0; a < 8; ++a) {
    const std::vector<std::size_t> path{a, a + 1, a + 2};
    const auto rtt = snap.path_rtt_ms(path);
    const bool both = snap.has(a, a + 1) && snap.has(a + 1, a + 2);
    ASSERT_EQ(rtt.has_value(), both);
    if (rtt.has_value()) {
      EXPECT_DOUBLE_EQ(*rtt,
                       snap.rtt_raw(a, a + 1) + snap.rtt_raw(a + 1, a + 2));
      ++complete;
    } else {
      ++incomplete;
    }
  }
  // At 50% missing both kinds should show up.
  EXPECT_GT(complete + incomplete, 0u);
}

TEST(SnapshotTest, UnknownRelayAndDiagonal) {
  World w(6, 4);
  const MatrixSnapshot snap = MatrixSnapshot::build(w.matrix);
  EXPECT_FALSE(snap.index_of(fp_of(999)).has_value());
  EXPECT_FALSE(snap.rtt(fp_of(999), w.fps[0]).has_value());
  for (std::size_t i = 0; i < snap.node_count(); ++i)
    EXPECT_FALSE(snap.rtt(i, i).has_value());
}

// ------------------------------------------------------------ detour index

/// Brute-force reference for one pair.
struct BruteDetour {
  std::int32_t via = DetourIndex::kNone;
  double detour_ms = std::numeric_limits<double>::infinity();
  bool tiv = false;
};
BruteDetour brute_detour(const MatrixSnapshot& snap, std::size_t i,
                         std::size_t j) {
  BruteDetour out;
  for (std::size_t k = 0; k < snap.node_count(); ++k) {
    if (k == i || k == j) continue;
    if (!snap.has(i, k) || !snap.has(k, j)) continue;
    const double sum = snap.rtt_raw(i, k) + snap.rtt_raw(k, j);
    if (sum < out.detour_ms) {
      out.detour_ms = sum;
      out.via = static_cast<std::int32_t>(k);
    }
  }
  out.tiv = out.via != DetourIndex::kNone && snap.has(i, j) &&
            out.detour_ms < snap.rtt_raw(i, j);
  return out;
}

void expect_index_matches_brute(const MatrixSnapshot& snap,
                                const DetourIndex& index) {
  std::size_t measured = 0, tivs = 0;
  for (std::size_t i = 0; i < snap.node_count(); ++i)
    for (std::size_t j = i + 1; j < snap.node_count(); ++j) {
      const BruteDetour want = brute_detour(snap, i, j);
      const DetourIndex::Detour& got = index.at(i, j);
      ASSERT_EQ(got.via, want.via) << "pair (" << i << "," << j << ")";
      if (want.via != DetourIndex::kNone) {
        EXPECT_DOUBLE_EQ(got.detour_ms, want.detour_ms);
      }
      EXPECT_EQ(got.tiv, want.tiv);
      EXPECT_EQ(got.measured, snap.has(i, j));
      if (snap.has(i, j)) ++measured;
      if (want.tiv) ++tivs;
    }
  EXPECT_EQ(index.measured_pairs(), measured);
  EXPECT_EQ(index.tiv_pairs(), tivs);
}

TEST(DetourIndexTest, FullBuildMatchesBruteForce) {
  World w(18, 5);
  const MatrixSnapshot snap = MatrixSnapshot::build(w.matrix);
  expect_index_matches_brute(snap, DetourIndex::build(snap));
}

TEST(DetourIndexTest, FullBuildMatchesBruteForceSparse) {
  World w(18, 6, /*missing_fraction=*/0.4);
  const MatrixSnapshot snap = MatrixSnapshot::build(w.matrix);
  const DetourIndex index = DetourIndex::build(snap);
  expect_index_matches_brute(snap, index);
  EXPECT_LT(index.measured_pairs(), 18u * 17 / 2);
}

TEST(DetourIndexTest, Float32SnapshotYieldsSameDetourStructure) {
  // The detour index built over a float32 image must find the same via
  // relays and the same TIV set — rounding at 1e-8 relative cannot flip a
  // comparison unless two detour sums were equal to within noise anyway.
  World w(18, 16, /*missing_fraction=*/0.2);
  const MatrixSnapshot narrow = MatrixSnapshot::build(
      w.matrix, 0, TimePoint{}, SnapshotStorage::kFloat32);
  expect_index_matches_brute(narrow, DetourIndex::build(narrow));
}

TEST(DetourIndexTest, IncrementalUpdateEqualsRebuild) {
  World w(16, 7, /*missing_fraction=*/0.1);
  const MatrixSnapshot before = MatrixSnapshot::build(w.matrix);
  DetourIndex index = DetourIndex::build(before);

  // Change a handful of entries, daemon-style: the changed-relay set is
  // every endpoint of every changed entry (an entry (a, b) can serve as a
  // leg of any pair incident to a or b — see the soundness argument in
  // detour_index.h).
  Rng rng(99);
  const std::vector<std::pair<std::size_t, std::size_t>> edits{
      {2, 9}, {2, 5}, {9, 14}, {3, 7}};
  std::vector<std::size_t> changed;
  for (const auto& [a, b] : edits) {
    w.matrix.set(w.fps[a], w.fps[b], rng.uniform(20.0, 400.0));
    changed.push_back(a);
    changed.push_back(b);
  }

  const MatrixSnapshot after = MatrixSnapshot::build(w.matrix);
  // Map to snapshot (sorted-fingerprint) indices before updating.
  std::vector<std::size_t> changed_indices;
  for (std::size_t f : changed)
    changed_indices.push_back(*after.index_of(w.fps[f]));
  index.update(after, changed_indices);
  expect_index_matches_brute(after, index);

  const DetourIndex rebuilt = DetourIndex::build(after);
  EXPECT_EQ(index.measured_pairs(), rebuilt.measured_pairs());
  EXPECT_EQ(index.tiv_pairs(), rebuilt.tiv_pairs());
}

// ------------------------------------------------------------- path server

TEST(PathServerTest, NotReadyBeforeFirstPublish) {
  PathServer server;
  EXPECT_FALSE(server.ready());
  EXPECT_FALSE(server.rtt(fp_of(0), fp_of(1)).has_value());
  EXPECT_TRUE(server.fastest_through(fp_of(0), 3).empty());
  EXPECT_DOUBLE_EQ(server.options_in_band(3, 0, 1e9), 0.0);
}

TEST(PathServerTest, FastestThroughMatchesExhaustive) {
  World w(14, 8);
  PathServer server;
  server.publish(w.matrix);
  const auto st = server.state();
  const auto circuits = server.fastest_through(w.fps[4], 5);
  ASSERT_EQ(circuits.size(), 5u);

  // Exhaustive reference: every unordered pair (a, b) around r, in the
  // snapshot's (sorted-fingerprint) index space.
  const std::size_t r = *st->snapshot.index_of(w.fps[4]);
  std::vector<double> sums;
  for (std::size_t a = 0; a < w.fps.size(); ++a)
    for (std::size_t b = a + 1; b < w.fps.size(); ++b) {
      if (a == r || b == r) continue;
      if (!st->snapshot.has(a, r) || !st->snapshot.has(r, b)) continue;
      sums.push_back(st->snapshot.rtt_raw(a, r) + st->snapshot.rtt_raw(r, b));
    }
  std::sort(sums.begin(), sums.end());
  for (std::size_t i = 0; i < circuits.size(); ++i) {
    EXPECT_DOUBLE_EQ(circuits[i].rtt_ms, sums[i]);
    ASSERT_EQ(circuits[i].relays.size(), 3u);
    EXPECT_EQ(circuits[i].relays[1], w.fps[4]);  // middle hop fixed
  }
}

TEST(PathServerTest, BandQueriesComeFromTheBandSorted) {
  World w(20, 9);
  PathServer server;
  server.publish(w.matrix);
  const auto circuits = server.circuits_in_band(3, 200, 400, 10);
  ASSERT_FALSE(circuits.empty());
  double prev = 0;
  for (const auto& c : circuits) {
    EXPECT_GE(c.rtt_ms, 200.0);
    EXPECT_LE(c.rtt_ms, 400.0);
    EXPECT_GE(c.rtt_ms, prev);  // RTT-ascending
    prev = c.rtt_ms;
    ASSERT_EQ(c.relays.size(), 3u);
    EXPECT_NE(c.relays[0], c.relays[1]);
    EXPECT_NE(c.relays[1], c.relays[2]);
    EXPECT_NE(c.relays[0], c.relays[2]);
  }
  EXPECT_GT(server.options_in_band(3, 200, 400), 0.0);
  // A wider band can only hold more of the population.
  EXPECT_GE(server.options_in_band(3, 0, 1e9),
            server.options_in_band(3, 200, 400));
}

TEST(PathServerTest, IncrementalPublishEqualsFullRebuild) {
  World w(15, 10);
  PathServer incremental, fresh;
  incremental.publish(w.matrix);

  // A few changed entries; the changed set is their endpoints (what the
  // daemon hook passes via the epoch delta's node list).
  Rng rng(11);
  w.matrix.set(w.fps[6], w.fps[2], rng.uniform(20.0, 400.0));
  w.matrix.set(w.fps[6], w.fps[11], rng.uniform(20.0, 400.0));
  w.matrix.set(w.fps[4], w.fps[9], rng.uniform(20.0, 400.0));
  const MatrixSnapshot snap = MatrixSnapshot::build(w.matrix, 1);
  incremental.publish(
      snap, {w.fps[6], w.fps[2], w.fps[11], w.fps[4], w.fps[9]});
  fresh.publish(w.matrix);

  const auto a = incremental.state();
  const auto b = fresh.state();
  EXPECT_EQ(incremental.publishes(), 2u);
  for (std::size_t i = 0; i < w.fps.size(); ++i)
    for (std::size_t j = i + 1; j < w.fps.size(); ++j) {
      const auto& di = a->detours.at(i, j);
      const auto& df = b->detours.at(i, j);
      ASSERT_EQ(di.via, df.via) << "pair (" << i << "," << j << ")";
      EXPECT_DOUBLE_EQ(di.detour_ms, df.detour_ms);
      EXPECT_EQ(di.tiv, df.tiv);
    }
  EXPECT_EQ(a->detours.tiv_pairs(), b->detours.tiv_pairs());
}

TEST(PathServerTest, ServesUnmeasuredPairsByDetour) {
  // The ShorTor-style answer: the pair itself is unmeasured but a via relay
  // with both legs measured still yields an estimate.
  meas::RttMatrix m;
  const auto a = fp_of(1), b = fp_of(2), r = fp_of(3);
  m.set(a, r, 30.0);
  m.set(r, b, 40.0);
  PathServer server;
  server.publish(m);
  EXPECT_FALSE(server.rtt(a, b).has_value());
  const auto route = server.best_detour(a, b);
  ASSERT_TRUE(route.has_value());
  EXPECT_EQ(route->via, r);
  EXPECT_DOUBLE_EQ(route->detour_ms, 70.0);
  EXPECT_FALSE(route->direct_ms.has_value());
  EXPECT_FALSE(route->tiv);  // no measured direct path to beat
}

// ------------------------------------------------- concurrency (TSan leg)

TEST(PathServerTest, ConcurrentReadersAcrossPublishes) {
  // Readers hammer queries while the writer publishes fresh snapshots; the
  // contract under test is the atomic swap: every query runs against one
  // complete state, never a torn or half-updated one. TSan validates the
  // absence of data races; the asserts validate self-consistency.
  const std::size_t n = 12;
  World w(n, 12);
  PathServer server;
  server.publish(w.matrix);

  std::atomic<bool> stop{false};
  std::atomic<std::size_t> queries{0};
  auto reader = [&](std::uint64_t seed) {
    Rng rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      const auto st = server.state();
      ASSERT_NE(st, nullptr);
      const std::size_t i = rng.next_below(n), j = rng.next_below(n);
      if (i != j) {
        // Snapshot and index were built together: a detour's legs must
        // exist in the same state's snapshot.
        const auto& d = st->detours.at(i, j);
        if (d.via != DetourIndex::kNone) {
          const auto k = static_cast<std::size_t>(d.via);
          ASSERT_TRUE(st->snapshot.has(i, k));
          ASSERT_TRUE(st->snapshot.has(k, j));
          ASSERT_DOUBLE_EQ(d.detour_ms, st->snapshot.rtt_raw(i, k) +
                                            st->snapshot.rtt_raw(k, j));
        }
      }
      const auto circuits =
          server.fastest_through(w.fps[rng.next_below(n)], 3);
      for (const auto& c : circuits) ASSERT_TRUE(std::isfinite(c.rtt_ms));
      queries.fetch_add(1, std::memory_order_relaxed);
    }
  };
  std::thread r1(reader, 100), r2(reader, 200);

  // Writer: 8 epochs of point changes, alternating incremental patches
  // (changed = the edited entries' endpoints) and full rebuilds.
  Rng rng(13);
  for (std::uint64_t epoch = 1; epoch <= 8; ++epoch) {
    const std::size_t a = rng.next_below(n);
    std::size_t b = rng.next_below(n);
    if (b == a) b = (b + 1) % n;
    w.matrix.set(w.fps[a], w.fps[b], rng.uniform(20.0, 400.0));
    if (epoch % 2 == 0)
      server.publish(MatrixSnapshot::build(w.matrix, epoch));  // full rebuild
    else
      server.publish(MatrixSnapshot::build(w.matrix, epoch),
                     {w.fps[a], w.fps[b]});  // incremental patch
  }
  stop.store(true, std::memory_order_relaxed);
  r1.join();
  r2.join();
  EXPECT_EQ(server.publishes(), 9u);
  EXPECT_GT(queries.load(), 0u);
  EXPECT_EQ(server.state()->snapshot.epoch(), 8u);
}

}  // namespace
}  // namespace ting::serve
