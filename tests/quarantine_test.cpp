// Relay-quarantine tests: the circuit-breaker state machine itself, then
// the acceptance scenario — a relay scripted dead via the fault-spec
// parser's `die:` clause is quarantined after `threshold` consecutive
// permanent failures; its pending pairs are held (not burned at one doomed
// attempt each), re-probed on probation when the window expires, and
// written off (deferred, accounted in ScanReport) once the window budget
// is spent. Both the serial and the parallel engine must implement the
// same policy with the same counts.
#include <gtest/gtest.h>

#include "scenario/faults.h"
#include "scenario/testbed.h"
#include "simnet/fault_plan.h"
#include "ting/measurer.h"
#include "ting/quarantine.h"
#include "ting/scheduler.h"

namespace ting::meas {
namespace {

QuarantineOptions breaker() {
  QuarantineOptions q;
  q.enabled = true;
  q.threshold = 3;
  q.cooldown = Duration::seconds(600);
  q.max_windows = 2;
  return q;
}

TimePoint at_s(double s) { return TimePoint{} + Duration::seconds(s); }

dir::Fingerprint some_relay() {
  crypto::X25519Key k;
  k.fill(0xab);
  return dir::Fingerprint::of_identity(k);
}

// ---- the state machine ------------------------------------------------------

TEST(RelayQuarantineTest, StaysClearBelowThreshold) {
  RelayQuarantine q(breaker());
  const dir::Fingerprint r = some_relay();
  EXPECT_FALSE(q.on_permanent_failure(r, at_s(0)));
  EXPECT_FALSE(q.on_permanent_failure(r, at_s(1)));
  EXPECT_EQ(q.state(r, at_s(2)), RelayQuarantine::State::kClear);
  EXPECT_TRUE(q.events().empty());
}

TEST(RelayQuarantineTest, OpensAfterThresholdConsecutiveFailures) {
  RelayQuarantine q(breaker());
  const dir::Fingerprint r = some_relay();
  q.on_permanent_failure(r, at_s(0));
  q.on_permanent_failure(r, at_s(1));
  EXPECT_TRUE(q.on_permanent_failure(r, at_s(2)));  // the transition
  EXPECT_EQ(q.state(r, at_s(3)), RelayQuarantine::State::kQuarantined);
  EXPECT_EQ(q.release_at(r).ns(), at_s(602).ns());
  ASSERT_EQ(q.events().size(), 1u);
  EXPECT_EQ(q.events()[0].failures, 3);
  EXPECT_FALSE(q.events()[0].terminal);
}

TEST(RelayQuarantineTest, FailureInsideWindowDoesNotExtendIt) {
  RelayQuarantine q(breaker());
  const dir::Fingerprint r = some_relay();
  for (int i = 0; i < 3; ++i) q.on_permanent_failure(r, at_s(i));
  // A pair dispatched before the window opened finishes inside it: counted,
  // but no new window and no new event.
  EXPECT_FALSE(q.on_permanent_failure(r, at_s(100)));
  EXPECT_EQ(q.release_at(r).ns(), at_s(602).ns());
  EXPECT_EQ(q.events().size(), 1u);
}

TEST(RelayQuarantineTest, ExpiryGivesProbationAndFailureReopens) {
  RelayQuarantine q(breaker());
  const dir::Fingerprint r = some_relay();
  for (int i = 0; i < 3; ++i) q.on_permanent_failure(r, at_s(i));
  EXPECT_EQ(q.state(r, at_s(700)), RelayQuarantine::State::kProbation);
  EXPECT_TRUE(q.on_permanent_failure(r, at_s(700)));  // re-opens window 2
  EXPECT_EQ(q.state(r, at_s(701)), RelayQuarantine::State::kQuarantined);
  EXPECT_EQ(q.release_at(r).ns(), at_s(1300).ns());
  EXPECT_EQ(q.events().size(), 2u);
}

TEST(RelayQuarantineTest, TerminalOnceWindowBudgetIsSpent) {
  RelayQuarantine q(breaker());
  const dir::Fingerprint r = some_relay();
  for (int i = 0; i < 3; ++i) q.on_permanent_failure(r, at_s(i));
  q.on_permanent_failure(r, at_s(700));   // window 2
  EXPECT_TRUE(q.on_permanent_failure(r, at_s(1400)));  // budget spent
  EXPECT_EQ(q.state(r, at_s(1401)), RelayQuarantine::State::kTerminal);
  EXPECT_EQ(q.state(r, at_s(1e9)), RelayQuarantine::State::kTerminal);
  ASSERT_EQ(q.events().size(), 3u);
  EXPECT_TRUE(q.events()[2].terminal);
  EXPECT_EQ(q.events()[2].failures, 5);
  // Terminal is sticky: further failures neither transition nor re-event.
  EXPECT_FALSE(q.on_permanent_failure(r, at_s(2000)));
  EXPECT_EQ(q.events().size(), 3u);
}

TEST(RelayQuarantineTest, SuccessClearsNonTerminalBreaker) {
  RelayQuarantine q(breaker());
  const dir::Fingerprint r = some_relay();
  for (int i = 0; i < 3; ++i) q.on_permanent_failure(r, at_s(i));
  EXPECT_EQ(q.state(r, at_s(10)), RelayQuarantine::State::kQuarantined);
  q.on_success(r);
  EXPECT_EQ(q.state(r, at_s(10)), RelayQuarantine::State::kClear);
  // Consecutive-failure count restarts from zero.
  EXPECT_FALSE(q.on_permanent_failure(r, at_s(20)));
}

TEST(RelayQuarantineTest, DisabledBreakerNeverOpens) {
  QuarantineOptions off = breaker();
  off.enabled = false;
  RelayQuarantine q(off);
  const dir::Fingerprint r = some_relay();
  for (int i = 0; i < 10; ++i) EXPECT_FALSE(q.on_permanent_failure(r, at_s(i)));
  EXPECT_EQ(q.state(r, at_s(11)), RelayQuarantine::State::kClear);
}

// ---- the acceptance scenario ------------------------------------------------

scenario::TestbedOptions calm(std::uint64_t seed) {
  scenario::TestbedOptions o;
  o.seed = seed;
  o.differential_fraction = 0;
  o.latency.jitter_mean_ms = 0.05;
  o.latency.jitter_spike_prob = 0;
  return o;
}

/// Check one engine's report against the designed scenario: 8 scan nodes,
/// node 7 scripted permanently dead (`die:7`), threshold 3, 2 windows.
/// Walkthrough in scan order: (0,7)(1,7)(2,7) fail and open window 1;
/// (3..6,7) are held; probation probe (3,7) fails and opens window 2;
/// probation probe (4,7) fails and goes terminal; (5,7)(6,7) defer. So 5
/// permanent failures — NOT 7, the breaker saved two doomed probes — plus
/// 2 deferrals, 2 probation probes, 3 breaker events, and 21 measured
/// healthy pairs.
void check_quarantine_report(const ScanReport& r, const dir::Fingerprint& dead,
                             const char* engine) {
  SCOPED_TRACE(engine);
  EXPECT_EQ(r.pairs_total, 28u);
  EXPECT_EQ(r.measured, 21u);
  EXPECT_EQ(r.failed, 5u);
  EXPECT_EQ(r.failed_permanent, 5u);
  EXPECT_EQ(r.deferred, 2u);
  EXPECT_EQ(r.probation_probes, 2u);
  EXPECT_FALSE(r.interrupted);
  EXPECT_EQ(r.measured + r.from_cache + r.failed + r.deferred +
                r.interrupted_pairs,
            r.pairs_total);
  // Every failure and every deferral touches the dead relay, and every
  // deferral names it as the culprit.
  for (const FailedPair& f : r.failed_pairs)
    EXPECT_TRUE(f.a == dead || f.b == dead);
  ASSERT_EQ(r.deferred_pairs.size(), 2u);
  for (const DeferredPair& d : r.deferred_pairs) {
    EXPECT_EQ(d.relay, dead);
    EXPECT_TRUE(d.a == dead || d.b == dead);
  }
  // Breaker history: window, re-opened window, terminal write-off.
  ASSERT_EQ(r.quarantine_events.size(), 3u);
  for (const QuarantineEvent& ev : r.quarantine_events)
    EXPECT_EQ(ev.relay, dead);
  EXPECT_FALSE(r.quarantine_events[0].terminal);
  EXPECT_EQ(r.quarantine_events[0].failures, 3);
  EXPECT_FALSE(r.quarantine_events[1].terminal);
  EXPECT_EQ(r.quarantine_events[1].failures, 4);
  EXPECT_TRUE(r.quarantine_events[2].terminal);
  EXPECT_EQ(r.quarantine_events[2].failures, 5);
  EXPECT_GE(r.quarantine_events[1].at.ns(), r.quarantine_events[0].until.ns());
}

std::vector<dir::Fingerprint> scan_nodes(scenario::Testbed& tb) {
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < 8; ++i) nodes.push_back(tb.fp(i));
  return nodes;
}

ScanOptions quarantine_scan_options() {
  ScanOptions o;
  o.randomize_order = false;  // the walkthrough above assumes scan order
  o.quarantine = breaker();
  return o;
}

TEST(QuarantineScanTest, SerialEngineQuarantinesScriptedDeadRelay) {
  scenario::Testbed tb = scenario::live_tor(10, calm(901));
  const std::vector<dir::Fingerprint> nodes = scan_nodes(tb);
  // The `die:` clause with start 0 removes node 7 from the consensus (and
  // every onion proxy) before the scan snapshots it: never-known, so its
  // failures classify permanent — the breaker's trigger class.
  simnet::FaultPlan plan(tb.net());
  scenario::apply_fault_spec(scenario::FaultSpec::parse("die:7"), tb, nodes,
                             plan, 901);

  TingConfig cfg;
  cfg.samples = 10;
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);
  const ScanReport report = scanner.scan(nodes, quarantine_scan_options());
  check_quarantine_report(report, nodes[7], "serial");
  // The healthy 7-node clique all landed in the cache.
  for (std::size_t i = 0; i < 7; ++i)
    for (std::size_t j = i + 1; j < 7; ++j)
      EXPECT_TRUE(cache.contains(nodes[i], nodes[j]));
}

TEST(QuarantineScanTest, ParallelEngineQuarantinesScriptedDeadRelay) {
  scenario::Testbed tb = scenario::live_tor(10, calm(902));
  const std::vector<dir::Fingerprint> nodes = scan_nodes(tb);
  simnet::FaultPlan plan(tb.net());
  scenario::apply_fault_spec(scenario::FaultSpec::parse("die:7"), tb, nodes,
                             plan, 902);

  TingConfig cfg;
  cfg.samples = 10;
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  // One measurer: pairs resolve in claim order, so the same walkthrough
  // (and the same counts) applies to the parallel engine's pump.
  ParallelScanner scanner({&measurer}, cache);
  ParallelScanOptions options;
  static_cast<ScanOptions&>(options) = quarantine_scan_options();
  const ScanReport report = scanner.scan(nodes, options);
  check_quarantine_report(report, nodes[7], "parallel");
}

TEST(QuarantineScanTest, DisabledBreakerKeepsPerPairSemantics) {
  // With the breaker off (the library default) every dead-relay pair burns
  // its one permanent attempt, exactly as before this feature existed.
  scenario::Testbed tb = scenario::live_tor(10, calm(903));
  const std::vector<dir::Fingerprint> nodes = scan_nodes(tb);
  simnet::FaultPlan plan(tb.net());
  scenario::apply_fault_spec(scenario::FaultSpec::parse("die:7"), tb, nodes,
                             plan, 903);

  TingConfig cfg;
  cfg.samples = 10;
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);
  ScanOptions options;
  options.randomize_order = false;
  const ScanReport report = scanner.scan(nodes, options);
  EXPECT_EQ(report.failed_permanent, 7u);
  EXPECT_EQ(report.deferred, 0u);
  EXPECT_TRUE(report.quarantine_events.empty());
  EXPECT_EQ(report.measured, 21u);
}

}  // namespace
}  // namespace ting::meas
