// Failure-injection tests: relay crashes, unreachable extend targets,
// missing echo servers, circuits torn down mid-measurement — the
// measurement pipeline must fail *explicitly* (error results, timeouts),
// never hang or silently return garbage.
#include <gtest/gtest.h>

#include "scenario/testbed.h"
#include "ting/measurer.h"
#include "ting/scheduler.h"
#include "tor/onion_proxy.h"

namespace ting::meas {
namespace {

scenario::TestbedOptions calm(std::uint64_t seed) {
  scenario::TestbedOptions o;
  o.seed = seed;
  o.differential_fraction = 0;
  o.latency.jitter_mean_ms = 0.05;
  o.latency.jitter_spike_prob = 0;
  return o;
}

TEST(FailureTest, HostDownDropsTrafficAndPings) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 71);
  const simnet::HostId a = net.add_host(IpAddr(10, 0, 0, 1), {40, -74});
  const simnet::HostId b = net.add_host(IpAddr(10, 0, 0, 2), {41, -75});
  net.listen(b, 80);

  net.set_host_down(b);
  bool connected = false, failed = false;
  net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, simnet::Protocol::kTcp,
              [&](simnet::ConnPtr) { connected = true; },
              [&](const std::string&) { failed = true; });
  std::optional<std::optional<Duration>> ping_result;
  net.ping(a, IpAddr(10, 0, 0, 2),
           [&](std::optional<Duration> rtt) { ping_result = rtt; },
           Duration::millis(300));
  loop.run();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(failed);
  ASSERT_TRUE(ping_result.has_value());
  EXPECT_FALSE(ping_result->has_value());

  // Revive: connects succeed again.
  net.set_host_down(b, false);
  bool ok = false;
  net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, simnet::Protocol::kTcp,
              [&](simnet::ConnPtr) { ok = true; });
  loop.run();
  EXPECT_TRUE(ok);
}

TEST(FailureTest, InFlightTrafficToCrashedHostIsLost) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 72);
  const simnet::HostId a = net.add_host(IpAddr(10, 0, 0, 1), {40, -74});
  const simnet::HostId b = net.add_host(IpAddr(10, 0, 0, 2), {41, -75});
  simnet::Listener* lis = net.listen(b, 80);
  int received = 0;
  lis->set_on_accept([&](simnet::ConnPtr c) {
    c->set_on_message([&received](Bytes) { ++received; });
  });
  simnet::ConnPtr client;
  net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, simnet::Protocol::kTcp,
              [&](simnet::ConnPtr c) { client = c; });
  loop.run();
  ASSERT_NE(client, nullptr);

  client->send(Bytes{1});
  net.set_host_down(b);  // crashes while the message is in flight
  client->send(Bytes{2});
  loop.run();
  EXPECT_EQ(received, 0);
}

TEST(FailureTest, MeasurementFailsCleanlyWhenRelayCrashes) {
  scenario::Testbed tb = scenario::planetlab31(calm(801));
  TingConfig cfg;
  cfg.samples = 50;
  cfg.sample_timeout = Duration::seconds(5);
  cfg.build_timeout = Duration::seconds(30);
  TingMeasurer measurer(tb.ting(), cfg);

  const auto x = tb.fp(2), y = tb.fp(9);
  // Crash x before measuring: the C_xy circuit build cannot complete and
  // the measurement must report an error within its deadline.
  tb.net().set_host_down(tb.host_of(x));
  const PairResult r = measurer.measure_blocking(x, y);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());

  // A healthy pair still measures fine afterwards.
  const PairResult ok = measurer.measure_blocking(tb.fp(3), tb.fp(9));
  EXPECT_TRUE(ok.ok) << ok.error;
}

TEST(FailureTest, MeasurementFailsWhenRelayCrashesMidSampling) {
  scenario::Testbed tb = scenario::planetlab31(calm(802));
  TingConfig cfg;
  cfg.samples = 2000;  // long enough that we can interrupt it
  cfg.sample_timeout = Duration::millis(2500);
  TingMeasurer measurer(tb.ting(), cfg);

  const auto x = tb.fp(4), y = tb.fp(11);
  std::optional<PairResult> result;
  measurer.measure(x, y, [&](PairResult r) { result = std::move(r); });

  // Let the measurement get going, then crash x.
  tb.loop().run_until(tb.loop().now() + Duration::seconds(20));
  EXPECT_FALSE(result.has_value());
  tb.net().set_host_down(tb.host_of(x));

  tb.loop().run_while_waiting_for([&] { return result.has_value(); },
                                  Duration::seconds(3600 * 24));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
}

TEST(FailureTest, ExtendToUnreachableRelayFailsCircuit) {
  scenario::Testbed tb = scenario::planetlab31(calm(803));
  // A descriptor whose ORPort nothing listens on.
  dir::RelayDescriptor phantom = tb.relay(5).descriptor();
  crypto::X25519Key k;
  k.fill(0xcc);
  phantom.onion_key = k;
  phantom.fingerprint = dir::Fingerprint::of_identity(k);
  phantom.nickname = "phantom";
  phantom.or_port = 9999;
  tb.ting().op().add_descriptor(phantom);

  bool failed = false;
  tb.ting().op().build_circuit(
      {tb.ting().w_fp(), tb.fp(0), phantom.fingerprint, tb.ting().z_fp()},
      [](tor::CircuitHandle) { FAIL() << "circuit should not build"; },
      [&](const std::string&) { failed = true; });
  tb.loop().run_while_waiting_for([&] { return failed; },
                                  Duration::seconds(120));
  EXPECT_TRUE(failed);
  // Relay 0 must not leak the half-built circuit.
  tb.loop().run_until(tb.loop().now() + Duration::seconds(2));
  EXPECT_EQ(tb.relay(0).open_circuits(), 0u);
}

TEST(FailureTest, MissingEchoServerEndsStream) {
  scenario::Testbed tb = scenario::planetlab31(calm(804));
  bool built = false;
  tor::CircuitHandle handle = 0;
  tb.ting().op().build_circuit(
      {tb.ting().w_fp(), tb.fp(1), tb.ting().z_fp()},
      [&](tor::CircuitHandle h) {
        built = true;
        handle = h;
      },
      {});
  tb.loop().run_while_waiting_for([&] { return built; },
                                  Duration::seconds(60));
  ASSERT_TRUE(built);

  // Target an address z's policy allows but where nothing listens.
  bool stream_failed = false;
  tb.ting().op().open_stream(
      handle, Endpoint{tb.net().ip_of(tb.measurement_host()), 12345},
      [] { FAIL() << "nothing listens there"; },
      [&](const std::string&) { stream_failed = true; });
  tb.loop().run_while_waiting_for([&] { return stream_failed; },
                                  Duration::seconds(60));
  EXPECT_TRUE(stream_failed);
}

TEST(FailureTest, CircuitClosedUnderActiveStreamNotifiesIt) {
  scenario::Testbed tb = scenario::planetlab31(calm(805));
  bool built = false;
  tor::CircuitHandle handle = 0;
  tb.ting().op().build_circuit(
      {tb.ting().w_fp(), tb.fp(2), tb.ting().z_fp()},
      [&](tor::CircuitHandle h) {
        built = true;
        handle = h;
      },
      {});
  tb.loop().run_while_waiting_for([&] { return built; },
                                  Duration::seconds(60));
  ASSERT_TRUE(built);

  bool connected = false, closed = false;
  auto stream = tb.ting().op().open_stream(
      handle, tb.ting().echo_endpoint(), [&] { connected = true; }, {});
  tb.loop().run_while_waiting_for([&] { return connected; },
                                  Duration::seconds(60));
  ASSERT_TRUE(connected);
  stream->set_on_close([&] { closed = true; });

  tb.ting().op().close_circuit(handle);
  tb.loop().run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(stream->state(), tor::StreamState::kClosed);
}

TEST(FailureTest, ScanSurvivesACrashedRelay) {
  scenario::Testbed tb = scenario::planetlab31(calm(806));
  TingConfig cfg;
  cfg.samples = 20;
  cfg.sample_timeout = Duration::seconds(2);
  cfg.build_timeout = Duration::seconds(20);
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);

  tb.net().set_host_down(tb.host_of(tb.fp(1)));
  std::vector<dir::Fingerprint> nodes{tb.fp(0), tb.fp(1), tb.fp(2)};
  ScanOptions options;
  options.attempts_per_pair = 1;
  const ScanReport report = scanner.scan(nodes, options);
  EXPECT_EQ(report.measured, 1u);  // only (0, 2)
  EXPECT_EQ(report.failed, 2u);
  EXPECT_TRUE(cache.contains(tb.fp(0), tb.fp(2)));
}

}  // namespace
}  // namespace ting::meas
