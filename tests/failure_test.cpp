// Failure-injection tests: relay crashes, unreachable extend targets,
// missing echo servers, circuits torn down mid-measurement, packet loss,
// link degradation, and consensus churn under a running scan — the
// measurement pipeline must fail *explicitly* (classified error results,
// timeouts), never hang or silently return garbage.
#include <gtest/gtest.h>

#include <memory>

#include "scenario/faults.h"
#include "scenario/testbed.h"
#include "simnet/fault_plan.h"
#include "ting/measurer.h"
#include "ting/scheduler.h"
#include "tor/onion_proxy.h"

namespace ting::meas {
namespace {

scenario::TestbedOptions calm(std::uint64_t seed) {
  scenario::TestbedOptions o;
  o.seed = seed;
  o.differential_fraction = 0;
  o.latency.jitter_mean_ms = 0.05;
  o.latency.jitter_spike_prob = 0;
  return o;
}

TEST(FailureTest, HostDownDropsTrafficAndPings) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 71);
  const simnet::HostId a = net.add_host(IpAddr(10, 0, 0, 1), {40, -74});
  const simnet::HostId b = net.add_host(IpAddr(10, 0, 0, 2), {41, -75});
  net.listen(b, 80);

  net.set_host_down(b);
  bool connected = false, failed = false;
  net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, simnet::Protocol::kTcp,
              [&](simnet::ConnPtr) { connected = true; },
              [&](const std::string&) { failed = true; });
  std::optional<std::optional<Duration>> ping_result;
  net.ping(a, IpAddr(10, 0, 0, 2),
           [&](std::optional<Duration> rtt) { ping_result = rtt; },
           Duration::millis(300));
  loop.run();
  EXPECT_FALSE(connected);
  EXPECT_TRUE(failed);
  ASSERT_TRUE(ping_result.has_value());
  EXPECT_FALSE(ping_result->has_value());

  // Revive: connects succeed again.
  net.set_host_down(b, false);
  bool ok = false;
  net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, simnet::Protocol::kTcp,
              [&](simnet::ConnPtr) { ok = true; });
  loop.run();
  EXPECT_TRUE(ok);
}

TEST(FailureTest, InFlightTrafficToCrashedHostIsLost) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 72);
  const simnet::HostId a = net.add_host(IpAddr(10, 0, 0, 1), {40, -74});
  const simnet::HostId b = net.add_host(IpAddr(10, 0, 0, 2), {41, -75});
  simnet::Listener* lis = net.listen(b, 80);
  int received = 0;
  lis->set_on_accept([&](simnet::ConnPtr c) {
    c->set_on_message([&received](Bytes) { ++received; });
  });
  simnet::ConnPtr client;
  net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, simnet::Protocol::kTcp,
              [&](simnet::ConnPtr c) { client = c; });
  loop.run();
  ASSERT_NE(client, nullptr);

  client->send(Bytes{1});
  net.set_host_down(b);  // crashes while the message is in flight
  client->send(Bytes{2});
  loop.run();
  EXPECT_EQ(received, 0);
}

TEST(FailureTest, MeasurementFailsCleanlyWhenRelayCrashes) {
  scenario::Testbed tb = scenario::planetlab31(calm(801));
  TingConfig cfg;
  cfg.samples = 50;
  cfg.sample_timeout = Duration::seconds(5);
  cfg.build_timeout = Duration::seconds(30);
  TingMeasurer measurer(tb.ting(), cfg);

  const auto x = tb.fp(2), y = tb.fp(9);
  // Crash x before measuring: the C_xy circuit build cannot complete and
  // the measurement must report an error within its deadline.
  tb.net().set_host_down(tb.host_of(x));
  const PairResult r = measurer.measure_blocking(x, y);
  EXPECT_FALSE(r.ok);
  EXPECT_FALSE(r.error.empty());

  // A healthy pair still measures fine afterwards.
  const PairResult ok = measurer.measure_blocking(tb.fp(3), tb.fp(9));
  EXPECT_TRUE(ok.ok) << ok.error;
}

TEST(FailureTest, MeasurementFailsWhenRelayCrashesMidSampling) {
  scenario::Testbed tb = scenario::planetlab31(calm(802));
  TingConfig cfg;
  cfg.samples = 2000;  // long enough that we can interrupt it
  cfg.sample_timeout = Duration::millis(2500);
  TingMeasurer measurer(tb.ting(), cfg);

  const auto x = tb.fp(4), y = tb.fp(11);
  std::optional<PairResult> result;
  measurer.measure(x, y, [&](PairResult r) { result = std::move(r); });

  // Let the measurement get going, then crash x.
  tb.loop().run_until(tb.loop().now() + Duration::seconds(20));
  EXPECT_FALSE(result.has_value());
  tb.net().set_host_down(tb.host_of(x));

  tb.loop().run_while_waiting_for([&] { return result.has_value(); },
                                  Duration::seconds(3600 * 24));
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->ok);
}

TEST(FailureTest, ExtendToUnreachableRelayFailsCircuit) {
  scenario::Testbed tb = scenario::planetlab31(calm(803));
  // A descriptor whose ORPort nothing listens on.
  dir::RelayDescriptor phantom = tb.relay(5).descriptor();
  crypto::X25519Key k;
  k.fill(0xcc);
  phantom.onion_key = k;
  phantom.fingerprint = dir::Fingerprint::of_identity(k);
  phantom.nickname = "phantom";
  phantom.or_port = 9999;
  tb.ting().op().add_descriptor(phantom);

  bool failed = false;
  tb.ting().op().build_circuit(
      {tb.ting().w_fp(), tb.fp(0), phantom.fingerprint, tb.ting().z_fp()},
      [](tor::CircuitHandle) { FAIL() << "circuit should not build"; },
      [&](const std::string&) { failed = true; });
  tb.loop().run_while_waiting_for([&] { return failed; },
                                  Duration::seconds(120));
  EXPECT_TRUE(failed);
  // Relay 0 must not leak the half-built circuit.
  tb.loop().run_until(tb.loop().now() + Duration::seconds(2));
  EXPECT_EQ(tb.relay(0).open_circuits(), 0u);
}

TEST(FailureTest, MissingEchoServerEndsStream) {
  scenario::Testbed tb = scenario::planetlab31(calm(804));
  bool built = false;
  tor::CircuitHandle handle = 0;
  tb.ting().op().build_circuit(
      {tb.ting().w_fp(), tb.fp(1), tb.ting().z_fp()},
      [&](tor::CircuitHandle h) {
        built = true;
        handle = h;
      },
      {});
  tb.loop().run_while_waiting_for([&] { return built; },
                                  Duration::seconds(60));
  ASSERT_TRUE(built);

  // Target an address z's policy allows but where nothing listens.
  bool stream_failed = false;
  tb.ting().op().open_stream(
      handle, Endpoint{tb.net().ip_of(tb.measurement_host()), 12345},
      [] { FAIL() << "nothing listens there"; },
      [&](const std::string&) { stream_failed = true; });
  tb.loop().run_while_waiting_for([&] { return stream_failed; },
                                  Duration::seconds(60));
  EXPECT_TRUE(stream_failed);
}

TEST(FailureTest, CircuitClosedUnderActiveStreamNotifiesIt) {
  scenario::Testbed tb = scenario::planetlab31(calm(805));
  bool built = false;
  tor::CircuitHandle handle = 0;
  tb.ting().op().build_circuit(
      {tb.ting().w_fp(), tb.fp(2), tb.ting().z_fp()},
      [&](tor::CircuitHandle h) {
        built = true;
        handle = h;
      },
      {});
  tb.loop().run_while_waiting_for([&] { return built; },
                                  Duration::seconds(60));
  ASSERT_TRUE(built);

  bool connected = false, closed = false;
  auto stream = tb.ting().op().open_stream(
      handle, tb.ting().echo_endpoint(), [&] { connected = true; }, {});
  tb.loop().run_while_waiting_for([&] { return connected; },
                                  Duration::seconds(60));
  ASSERT_TRUE(connected);
  stream->set_on_close([&] { closed = true; });

  tb.ting().op().close_circuit(handle);
  tb.loop().run();
  EXPECT_TRUE(closed);
  EXPECT_EQ(stream->state(), tor::StreamState::kClosed);
}

TEST(FailureTest, ScanSurvivesACrashedRelay) {
  scenario::Testbed tb = scenario::planetlab31(calm(806));
  TingConfig cfg;
  cfg.samples = 20;
  cfg.sample_timeout = Duration::seconds(2);
  cfg.build_timeout = Duration::seconds(20);
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);

  tb.net().set_host_down(tb.host_of(tb.fp(1)));
  std::vector<dir::Fingerprint> nodes{tb.fp(0), tb.fp(1), tb.fp(2)};
  ScanOptions options;
  options.attempts_per_pair = 1;
  const ScanReport report = scanner.scan(nodes, options);
  EXPECT_EQ(report.measured, 1u);  // only (0, 2)
  EXPECT_EQ(report.failed, 2u);
  // Crashes are transient (the relay may come back), never permanent.
  EXPECT_EQ(report.failed_transient, 2u);
  EXPECT_EQ(report.failed_permanent, 0u);
  EXPECT_EQ(report.failed_churned, 0u);
  EXPECT_TRUE(cache.contains(tb.fp(0), tb.fp(2)));
}

// ---- packet loss ------------------------------------------------------------

TEST(FailureTest, PacketLossDelaysButDeliversReliableTraffic) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 73);
  const simnet::HostId a = net.add_host(IpAddr(10, 0, 0, 1), {40, -74});
  const simnet::HostId b = net.add_host(IpAddr(10, 0, 0, 2), {41, -75});
  simnet::Listener* lis = net.listen(b, 80);
  int received = 0;
  lis->set_on_accept([&](simnet::ConnPtr c) {
    c->set_on_message([&received](Bytes) { ++received; });
  });

  // Heavy loss: reliable transports model it as retransmission delay, so
  // the connect and the message still go through — late, not never. A
  // scan under loss slows down; it must not stall or drop pairs.
  net.set_packet_loss(b, 0.9);
  simnet::ConnPtr client;
  net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, simnet::Protocol::kTcp,
              [&](simnet::ConnPtr c) { client = c; });
  loop.run();
  ASSERT_NE(client, nullptr);
  client->send(Bytes{1});
  loop.run();
  EXPECT_EQ(received, 1);
  // At 90% loss at least one leg retransmitted (1 s RTO per retry).
  EXPECT_GE(loop.now().sec(), 1.0);

  // Clearing the fault restores direct delivery.
  net.set_packet_loss(b, 0.0);
  const TimePoint before = loop.now();
  client->send(Bytes{2});
  loop.run();
  EXPECT_EQ(received, 2);
  EXPECT_LT((loop.now() - before).sec(), 1.0);
}

TEST(FailureTest, PingsAreDroppedUnderFullLoss) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 74);
  const simnet::HostId a = net.add_host(IpAddr(10, 0, 0, 1), {40, -74});
  net.add_host(IpAddr(10, 0, 0, 2), {41, -75});
  net.set_packet_loss(a, 1.0);

  std::optional<std::optional<Duration>> result;
  net.ping(a, IpAddr(10, 0, 0, 2),
           [&](std::optional<Duration> rtt) { result = rtt; },
           Duration::millis(500));
  loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());  // timed out, not delivered late
}

TEST(FailureTest, DegradedLinkInflatesRtt) {
  simnet::EventLoop loop;
  simnet::Network net(loop, {}, 75);
  const simnet::HostId a = net.add_host(IpAddr(10, 0, 0, 1), {40, -74});
  const simnet::HostId b = net.add_host(IpAddr(10, 0, 0, 2), {41, -75});

  const auto ping_ms = [&]() {
    std::optional<Duration> rtt;
    net.ping(a, IpAddr(10, 0, 0, 2),
             [&](std::optional<Duration> r) { rtt = r; },
             Duration::seconds(5));
    loop.run();
    return rtt.value().ms();
  };

  const double base = ping_ms();
  net.set_link_degradation(b, Duration::millis(50), Duration());
  // +50 ms one-way on b's access link shows up twice in an RTT.
  EXPECT_GE(ping_ms(), base + 95.0);
  net.set_link_degradation(b, Duration(), Duration());
  EXPECT_LT(ping_ms(), base + 10.0);
}

// ---- crash windows ----------------------------------------------------------

TEST(FailureTest, ScanRecoversAfterCrashWindow) {
  scenario::Testbed tb = scenario::planetlab31(calm(807));
  TingConfig cfg;
  cfg.samples = 10;
  cfg.sample_timeout = Duration::seconds(2);
  cfg.build_timeout = Duration::seconds(20);
  cfg.max_build_attempts = 1;
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);

  // Relay 1 is down from the start and recovers after 60 s; the engine's
  // transient retries (backoff in the parallel engine, immediate re-attempt
  // here) must pick it back up.
  simnet::FaultPlan plan(tb.net());
  plan.crash_window(tb.host_of(tb.fp(1)), Duration(), Duration::seconds(60));

  std::vector<dir::Fingerprint> nodes{tb.fp(0), tb.fp(1), tb.fp(2)};
  ScanOptions options;
  options.attempts_per_pair = 5;
  options.fault_plan = &plan;
  const ScanReport report = scanner.scan(nodes, options);

  EXPECT_EQ(report.measured, 3u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(report.retries, 1u);
  EXPECT_TRUE(cache.contains(tb.fp(0), tb.fp(1)));
  EXPECT_TRUE(cache.contains(tb.fp(1), tb.fp(2)));
  // Both the crash and the recovery were annotated on the report.
  ASSERT_EQ(report.fault_events.size(), 2u);
  EXPECT_NE(report.fault_events[0].what.find("crash"), std::string::npos);
  EXPECT_NE(report.fault_events[1].what.find("recover"), std::string::npos);
}

// ---- churn during a scan ----------------------------------------------------

TEST(FailureTest, SequentialScanReresolvesChurnedRelay) {
  scenario::Testbed tb = scenario::planetlab31(calm(808));
  TingConfig cfg;
  cfg.samples = 10;
  TingMeasurer measurer(tb.ting(), cfg);
  RttMatrix cache;
  AllPairsScanner scanner(measurer, cache);

  // fp(2) leaves the consensus 1 s into the scan and rejoins at 51 s.
  simnet::FaultPlan plan(tb.net());
  auto stash = std::make_shared<std::optional<dir::RelayDescriptor>>();
  plan.at(Duration::seconds(1), "consensus: -" + tb.fp(2).short_name(),
          [&tb, stash]() { *stash = tb.directory_remove(tb.fp(2)); });
  plan.at(Duration::seconds(51), "consensus: +" + tb.fp(2).short_name(),
          [&tb, stash]() { tb.directory_restore(**stash); });

  std::vector<dir::Fingerprint> nodes{tb.fp(0), tb.fp(1), tb.fp(2)};
  ScanOptions options;
  options.attempts_per_pair = 4;
  options.randomize_order = false;  // (0,1) first, then the churned pairs
  options.live_consensus = &tb.consensus();
  options.churn_requeue_delay = Duration::seconds(30);
  options.fault_plan = &plan;
  const ScanReport report = scanner.scan(nodes, options);

  // Every pair eventually measures: churned attempts waited for a fresh
  // consensus, re-resolved fp(2), and re-injected its descriptor.
  EXPECT_EQ(report.measured, 3u) << "failed: " << report.failed;
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(report.retries, 1u);
  EXPECT_GE(report.churn_reresolved, 1u);
  EXPECT_TRUE(cache.contains(tb.fp(0), tb.fp(2)));
  EXPECT_TRUE(cache.contains(tb.fp(1), tb.fp(2)));
  EXPECT_EQ(report.fault_events.size(), 2u);
}

TEST(FailureTest, ParallelScanReresolvesChurnedRelay) {
  scenario::Testbed tb = scenario::planetlab31(calm(809));
  TingConfig cfg;
  cfg.samples = 10;
  std::vector<std::unique_ptr<TingMeasurer>> owned;
  std::vector<TingMeasurer*> pool;
  for (meas::MeasurementHost* host : tb.measurement_pool(2)) {
    owned.push_back(std::make_unique<TingMeasurer>(*host, cfg));
    pool.push_back(owned.back().get());
  }
  RttMatrix cache;
  ParallelScanner scanner(pool, cache);

  simnet::FaultPlan plan(tb.net());
  auto stash = std::make_shared<std::optional<dir::RelayDescriptor>>();
  plan.at(Duration::seconds(1), "consensus: -" + tb.fp(3).short_name(),
          [&tb, stash]() { *stash = tb.directory_remove(tb.fp(3)); });
  plan.at(Duration::seconds(51), "consensus: +" + tb.fp(3).short_name(),
          [&tb, stash]() { tb.directory_restore(**stash); });

  std::vector<dir::Fingerprint> nodes{tb.fp(0), tb.fp(1), tb.fp(2), tb.fp(3)};
  ParallelScanOptions options;
  options.attempts_per_pair = 5;
  options.live_consensus = &tb.consensus();
  options.churn_requeue_delay = Duration::seconds(30);
  options.fault_plan = &plan;
  const ScanReport report = scanner.scan(nodes, options);

  EXPECT_EQ(report.measured, 6u) << "failed: " << report.failed;
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(report.churn_reresolved, 1u);
  for (std::size_t i = 0; i < 3; ++i)
    EXPECT_TRUE(cache.contains(tb.fp(i), tb.fp(3)));
}

// ---- the acceptance scenario ------------------------------------------------

// A 20-node parallel scan under a fault plan combining relay churn and 5%
// packet loss everywhere, plus one relay that was never in the consensus:
//  - the scan completes without stalling,
//  - permanent failures consume exactly one attempt,
//  - churned relays are re-resolved against the live consensus and their
//    pairs measured,
//  - the per-class failure counters are consistent with failed/retries.
TEST(FailureTest, TwentyNodeScanUnderChurnAndLoss) {
  scenario::Testbed tb = scenario::planetlab31(calm(810));
  TingConfig cfg;
  cfg.samples = 5;
  cfg.sample_timeout = Duration::seconds(2);
  cfg.build_timeout = Duration::seconds(20);

  // 19 real relays + one ghost that no consensus has ever listed.
  std::vector<dir::Fingerprint> real;
  for (std::size_t i = 0; i < 19; ++i) real.push_back(tb.fp(i));
  crypto::X25519Key ghost_key;
  ghost_key.fill(0xdd);
  const dir::Fingerprint ghost = dir::Fingerprint::of_identity(ghost_key);
  std::vector<dir::Fingerprint> nodes = real;
  nodes.push_back(ghost);

  // Faults over the *real* relays: 5% loss on every link plus two scripted
  // consensus leave/rejoin cycles (the spec goes through the same parser
  // the CLI's --faults flag uses).
  simnet::FaultPlan plan(tb.net());
  // Churn timing vs retries: leaves at 20 s and 60 s, rejoins at 80 s and
  // 120 s. A churn failure can only happen at t >= 20, and with 6 attempts
  // spaced by the 20 s requeue delay the last attempt lands at t + 100 >=
  // 120 — after every rejoin — so no pair can exhaust on churn alone.
  const auto spec =
      scenario::FaultSpec::parse("loss:*:0.05;churn:2:20:40:60");
  scenario::apply_fault_spec(spec, tb, real, plan, /*seed=*/810);

  std::vector<std::unique_ptr<TingMeasurer>> owned;
  std::vector<TingMeasurer*> pool;
  for (meas::MeasurementHost* host : tb.measurement_pool(6)) {
    owned.push_back(std::make_unique<TingMeasurer>(*host, cfg));
    pool.push_back(owned.back().get());
  }
  RttMatrix cache;
  ParallelScanner scanner(pool, cache);
  ParallelScanOptions options;
  options.attempts_per_pair = 6;
  options.live_consensus = &tb.consensus();
  options.churn_requeue_delay = Duration::seconds(20);
  options.retry_backoff_base = Duration::seconds(10);
  options.fault_plan = &plan;
  const ScanReport report = scanner.scan(nodes, options);

  const std::size_t pairs = nodes.size() * (nodes.size() - 1) / 2;  // 190
  EXPECT_EQ(report.pairs_total, pairs);

  // The 19 ghost pairs are the only failures, all permanent, and each
  // consumed exactly one attempt (no retries were wasted on them).
  EXPECT_EQ(report.failed, 19u);
  EXPECT_EQ(report.failed_permanent, 19u);
  EXPECT_EQ(report.failed_transient + report.failed_churned, 0u);
  for (const auto& f : report.failed_pairs)
    EXPECT_TRUE(f.a == ghost || f.b == ghost);

  // Everything else measured despite loss and churn; churned relays were
  // re-resolved and their pairs completed.
  EXPECT_EQ(report.measured, pairs - 19u);
  EXPECT_EQ(report.measured + report.from_cache + report.failed, pairs);
  EXPECT_GE(report.churn_reresolved, 1u);

  // Counter consistency: per-class counts sum to failed, one FailedPair
  // record per failure, and the retry histogram accounts every pair.
  EXPECT_EQ(report.failed_transient + report.failed_permanent +
                report.failed_churned,
            report.failed);
  EXPECT_EQ(report.failed_pairs.size(), report.failed);
  std::size_t histogram_total = 0, histogram_retries = 0;
  for (std::size_t k = 0; k < report.retry_histogram.size(); ++k) {
    histogram_total += report.retry_histogram[k];
    histogram_retries += k * report.retry_histogram[k];
  }
  EXPECT_EQ(histogram_total, report.measured + report.failed);
  EXPECT_EQ(histogram_retries, report.retries);

  // The consensus events fired inside the scan window and were annotated.
  EXPECT_GE(report.fault_events.size(), 4u);
}

}  // namespace
}  // namespace ting::meas
