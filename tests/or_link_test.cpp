// Tests for the OR-connection link handshake (VERSIONS/NETINFO): version
// negotiation, queueing of circuit cells until the link opens, ordering
// guarantees, and rejection of protocol violations.
#include <gtest/gtest.h>

#include "tor/or_link.h"

namespace ting::tor {
namespace {

struct LinkWorld {
  simnet::EventLoop loop;
  simnet::Network net;
  simnet::HostId a, b;

  LinkWorld() : net(loop, quiet(), 61) {
    a = net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
    b = net.add_host(IpAddr(10, 0, 0, 2), {51.5, -0.1});
  }
  static simnet::LatencyConfig quiet() {
    simnet::LatencyConfig c;
    c.jitter_mean_ms = 0.01;
    c.jitter_spike_prob = 0;
    return c;
  }
};

TEST(OrLinkTest, VersionsPayloadRoundTrip) {
  const Bytes payload = encode_versions_payload();
  const auto versions = decode_versions_payload(
      std::span<const std::uint8_t>(payload.data(), payload.size()));
  ASSERT_EQ(versions.size(), std::size(kSupportedLinkVersions));
  for (std::size_t i = 0; i < versions.size(); ++i)
    EXPECT_EQ(versions[i], kSupportedLinkVersions[i]);
}

TEST(OrLinkTest, VersionNegotiationPicksHighestCommon) {
  EXPECT_EQ(negotiate_version({3, 4, 5}), 5);
  EXPECT_EQ(negotiate_version({3}), 3);
  EXPECT_EQ(negotiate_version({4, 9}), 4);
  EXPECT_EQ(negotiate_version({1, 2}), 0);
  EXPECT_EQ(negotiate_version({}), 0);
}

TEST(OrLinkTest, HandshakeOpensBothSidesAndNegotiates) {
  LinkWorld w;
  OrLink::Ptr server_link;
  simnet::Listener* lis = w.net.listen(w.b, 9001);
  lis->set_on_accept([&](simnet::ConnPtr conn) {
    server_link = OrLink::accept(w.net, std::move(conn));
  });

  OrLink::Ptr client_link;
  bool client_open = false;
  w.net.connect(w.a, Endpoint{w.net.ip_of(w.b), 9001}, simnet::Protocol::kTor,
                [&](simnet::ConnPtr conn) {
                  client_link = OrLink::initiate(w.net, std::move(conn));
                  client_link->set_on_open([&] { client_open = true; });
                });
  w.loop.run();
  ASSERT_NE(client_link, nullptr);
  ASSERT_NE(server_link, nullptr);
  EXPECT_TRUE(client_open);
  EXPECT_TRUE(client_link->is_open());
  EXPECT_TRUE(server_link->is_open());
  EXPECT_EQ(client_link->version(), 5);
  EXPECT_EQ(server_link->version(), 5);
}

TEST(OrLinkTest, CellsQueuedUntilOpenArriveInOrderAfterHandshake) {
  LinkWorld w;
  std::vector<std::uint32_t> received;
  simnet::Listener* lis = w.net.listen(w.b, 9001);
  OrLink::Ptr server_link;
  lis->set_on_accept([&](simnet::ConnPtr conn) {
    server_link = OrLink::accept(w.net, std::move(conn));
    server_link->set_on_cell([&](Bytes wire) {
      const auto cell = cells::Cell::decode(
          std::span<const std::uint8_t>(wire.data(), wire.size()));
      // The server must never see a circuit cell before its link opened.
      EXPECT_TRUE(server_link->is_open());
      received.push_back(cell.circ_id);
    });
  });

  w.net.connect(w.a, Endpoint{w.net.ip_of(w.b), 9001}, simnet::Protocol::kTor,
                [&](simnet::ConnPtr conn) {
                  auto link = OrLink::initiate(w.net, std::move(conn));
                  // Queue three circuit cells immediately — before the
                  // handshake can possibly have completed.
                  for (std::uint32_t id = 1; id <= 3; ++id)
                    link->send_cell(cells::Cell::make(
                                        id, cells::CellCommand::kCreate,
                                        Bytes(32, 1))
                                        .encode());
                  EXPECT_FALSE(link->is_open());
                });
  w.loop.run();
  EXPECT_EQ(received, (std::vector<std::uint32_t>{1, 2, 3}));
}

TEST(OrLinkTest, SetOnOpenAfterOpenFiresImmediately) {
  LinkWorld w;
  simnet::Listener* lis = w.net.listen(w.b, 9001);
  OrLink::Ptr server_link;
  lis->set_on_accept([&](simnet::ConnPtr conn) {
    server_link = OrLink::accept(w.net, std::move(conn));
  });
  OrLink::Ptr client_link;
  w.net.connect(w.a, Endpoint{w.net.ip_of(w.b), 9001}, simnet::Protocol::kTor,
                [&](simnet::ConnPtr conn) {
                  client_link = OrLink::initiate(w.net, std::move(conn));
                });
  w.loop.run();
  ASSERT_TRUE(client_link->is_open());
  bool fired = false;
  client_link->set_on_open([&] { fired = true; });
  EXPECT_TRUE(fired);
}

TEST(OrLinkTest, CircuitCellBeforeHandshakeClosesConnection) {
  LinkWorld w;
  simnet::Listener* lis = w.net.listen(w.b, 9001);
  OrLink::Ptr server_link;
  lis->set_on_accept([&](simnet::ConnPtr conn) {
    server_link = OrLink::accept(w.net, std::move(conn));
  });
  bool closed = false;
  w.net.connect(w.a, Endpoint{w.net.ip_of(w.b), 9001}, simnet::Protocol::kTor,
                [&](simnet::ConnPtr conn) {
                  conn->set_on_close([&] { closed = true; });
                  // A rogue peer that skips VERSIONS entirely.
                  conn->send(cells::Cell::make(7, cells::CellCommand::kCreate,
                                               Bytes(32, 2))
                                 .encode());
                });
  w.loop.run();
  EXPECT_TRUE(closed);
  ASSERT_NE(server_link, nullptr);
  EXPECT_FALSE(server_link->is_open());
}

TEST(OrLinkTest, GarbageInsteadOfCellClosesConnection) {
  LinkWorld w;
  simnet::Listener* lis = w.net.listen(w.b, 9001);
  OrLink::Ptr server_link;
  lis->set_on_accept([&](simnet::ConnPtr conn) {
    server_link = OrLink::accept(w.net, std::move(conn));
  });
  bool closed = false;
  w.net.connect(w.a, Endpoint{w.net.ip_of(w.b), 9001}, simnet::Protocol::kTor,
                [&](simnet::ConnPtr conn) {
                  conn->set_on_close([&] { closed = true; });
                  conn->send(Bytes{1, 2, 3});  // not even a cell
                });
  w.loop.run();
  EXPECT_TRUE(closed);
}

}  // namespace
}  // namespace ting::tor
