// Tests for the Ting core: the Eq. (4) identity against simulator ground
// truth, sample-size behaviour, the strawman's failure on protocol-
// differential networks, forwarding-delay estimation, and the RTT matrix.
#include <gtest/gtest.h>

#include <cmath>

#include "scenario/testbed.h"
#include "ting/forwarding_delay.h"
#include "ting/measurer.h"
#include "ting/rtt_matrix.h"

namespace ting::meas {
namespace {

scenario::TestbedOptions calm_options(std::uint64_t seed = 11,
                                      double differential = 0.0) {
  scenario::TestbedOptions o;
  o.seed = seed;
  o.differential_fraction = differential;
  o.latency.jitter_mean_ms = 0.05;
  o.latency.jitter_spike_prob = 0.002;
  o.latency.jitter_spike_ms = 4.0;
  return o;
}

TEST(TingMeasurerTest, EstimateMatchesGroundTruthPlusForwardingDelays) {
  scenario::Testbed tb = scenario::planetlab31(calm_options());
  TingConfig cfg;
  cfg.samples = 100;
  TingMeasurer measurer(tb.ting(), cfg);

  for (const auto& [i, j] : std::vector<std::pair<int, int>>{
           {0, 9}, {3, 15}, {16, 18}, {5, 24}}) {
    const dir::Fingerprint x = tb.fp(static_cast<std::size_t>(i));
    const dir::Fingerprint y = tb.fp(static_cast<std::size_t>(j));
    const PairResult r = measurer.measure_blocking(x, y);
    ASSERT_TRUE(r.ok) << r.error;
    const double truth = tb.net().latency()
                             .rtt(tb.host_of(x), tb.host_of(y),
                                  simnet::Protocol::kTor)
                             .ms();
    // Eq. (4): estimate = R(x,y) + F_x + F_y; with ~100 samples jitter
    // leaves a small residue. The per-relay base forwarding delay is
    // 0.1–2.2 ms, so the estimate sits within ~[truth, truth+5].
    EXPECT_GT(r.rtt_ms, truth - 1.0) << i << "," << j;
    EXPECT_LT(r.rtt_ms, truth + 6.0) << i << "," << j;
  }
}

TEST(TingMeasurerTest, AccuracyWithin10PercentForMostPairs) {
  // A smaller version of the §4.2 headline claim on a handful of pairs.
  scenario::Testbed tb = scenario::planetlab31(calm_options(23));
  TingConfig cfg;
  cfg.samples = 60;
  TingMeasurer measurer(tb.ting(), cfg);
  Rng rng(5);
  int within_10pct = 0, total = 0;
  for (int trial = 0; trial < 8; ++trial) {
    const auto idx = rng.sample_indices(tb.relay_count(), 2);
    const auto x = tb.fp(idx[0]), y = tb.fp(idx[1]);
    const PairResult r = measurer.measure_blocking(x, y);
    ASSERT_TRUE(r.ok) << r.error;
    const double truth = tb.net().latency()
                             .rtt(tb.host_of(x), tb.host_of(y),
                                  simnet::Protocol::kTor)
                             .ms();
    ++total;
    // §4.2's caveat: an apparently large relative error on a close pair is
    // a small absolute error (the estimate carries F_x + F_y).
    if (std::abs(r.rtt_ms - truth) / truth <= 0.10 ||
        std::abs(r.rtt_ms - truth) <= 5.0)
      ++within_10pct;
  }
  EXPECT_GE(within_10pct, total - 1);
}

TEST(TingMeasurerTest, RejectsInvalidPairs) {
  scenario::Testbed tb = scenario::planetlab31(calm_options(31));
  TingMeasurer measurer(tb.ting());
  const PairResult same = measurer.measure_blocking(tb.fp(0), tb.fp(0));
  EXPECT_FALSE(same.ok);
  const PairResult with_w =
      measurer.measure_blocking(tb.fp(0), tb.ting().w_fp());
  EXPECT_FALSE(with_w.ok);
}

TEST(TingMeasurerTest, MoreSamplesNeverWorse) {
  scenario::Testbed tb = scenario::planetlab31(calm_options(37));
  TingConfig cfg;
  cfg.samples = 120;
  cfg.keep_raw_samples = true;
  TingMeasurer measurer(tb.ting(), cfg);
  const PairResult r = measurer.measure_blocking(tb.fp(2), tb.fp(20));
  ASSERT_TRUE(r.ok) << r.error;
  ASSERT_EQ(r.cxy.raw_samples_ms.size(), 120u);
  // Prefix-minimum estimates are monotonically refined toward the final
  // value: each circuit's prefix min is non-increasing in k.
  double prev = 1e18;
  for (std::size_t k = 1; k <= 120; k += 10) {
    double m = 1e18;
    for (std::size_t i = 0; i < k; ++i)
      m = std::min(m, r.cxy.raw_samples_ms[i]);
    EXPECT_LE(m, prev + 1e-12);
    prev = m;
  }
  // And the k=full prefix estimate equals the reported estimate.
  EXPECT_NEAR(r.estimate_with_prefix(120), r.rtt_ms, 1e-9);
}

TEST(TingMeasurerTest, CircuitMeasurementMatchesEquationOne) {
  // Zero out every noise source and check Eq. (1) exactly: the C_xy echo
  // RTT equals the sum of link RTTs plus 2F per relay (local relays' F
  // included), using configured bases.
  scenario::TestbedOptions o = calm_options(41);
  o.latency.jitter_mean_ms = 1e-7;
  o.latency.jitter_spike_prob = 0;
  scenario::Testbed tb = scenario::planetlab31(o);
  TingConfig cfg;
  cfg.samples = 400;  // drive relay queueing minima toward the base
  TingMeasurer measurer(tb.ting(), cfg);

  const auto x = tb.fp(1), y = tb.fp(12);
  const CircuitMeasurement m = measurer.measure_circuit_blocking({x, y}, 400);
  ASSERT_TRUE(m.ok) << m.error;

  const auto& lat = tb.net().latency();
  const simnet::HostId h = tb.measurement_host();
  const simnet::HostId hx = tb.host_of(x), hy = tb.host_of(y);
  const double links = lat.rtt(h, h, simnet::Protocol::kTor).ms() * 2 +
                       lat.rtt(h, hx, simnet::Protocol::kTor).ms() +
                       lat.rtt(hx, hy, simnet::Protocol::kTor).ms() +
                       lat.rtt(hy, h, simnet::Protocol::kTor).ms();
  const double f = 2 * (tb.relay(1).config().base_forward_ms +
                        tb.relay(12).config().base_forward_ms +
                        2 * 0.2 /* w and z base */);
  EXPECT_NEAR(m.min_rtt_ms, links + f, 1.5);
}

TEST(TingMeasurerTest, StrawmanFailsOnDifferentialNetworksTingDoesNot) {
  // §3.2's motivation: on networks that slow ICMP, the ping-corrected
  // strawman misestimates while Ting stays near truth.
  scenario::TestbedOptions o = calm_options(47, /*differential=*/0.0);
  scenario::Testbed tb = scenario::planetlab31(o);
  // Give x's network a strong ICMP penalty by hand.
  const auto x = tb.fp(4), y = tb.fp(22);
  simnet::NetworkPolicy bias;
  bias.icmp_extra_ms = 18.0;
  tb.net().latency().set_policy(tb.host_of(x), bias);

  TingConfig cfg;
  cfg.samples = 80;
  TingMeasurer measurer(tb.ting(), cfg);
  const double truth = tb.net().latency()
                           .rtt(tb.host_of(x), tb.host_of(y),
                                simnet::Protocol::kTor)
                           .ms();

  const PairResult ting = measurer.measure_blocking(x, y);
  ASSERT_TRUE(ting.ok) << ting.error;
  EXPECT_LT(std::abs(ting.rtt_ms - truth), 6.0);

  const PairResult straw = measurer.strawman_measure_blocking(x, y, 80);
  ASSERT_TRUE(straw.ok) << straw.error;
  // The strawman subtracts an ICMP RTT inflated by ~18 ms.
  EXPECT_LT(straw.rtt_ms, truth - 10.0);
}

TEST(ForwardingDelayTest, RecoversConfiguredBaseOnNeutralNetworks) {
  scenario::TestbedOptions o = calm_options(53, 0.0);
  o.latency.jitter_mean_ms = 1e-7;
  o.latency.jitter_spike_prob = 0;
  scenario::Testbed tb = scenario::planetlab31(o);
  TingConfig cfg;
  TingMeasurer measurer(tb.ting(), cfg);
  ForwardingDelayEstimator est(measurer, /*probes=*/150);

  for (std::size_t i : {0u, 7u}) {
    const ForwardingDelayResult r = est.measure_blocking(tb.fp(i));
    ASSERT_TRUE(r.ok) << r.error;
    const double base = tb.relay(i).config().base_forward_ms;
    EXPECT_NEAR(r.icmp_based_ms, base, 0.8) << "relay " << i;
    EXPECT_NEAR(r.tcp_based_ms, base, 0.8) << "relay " << i;
  }
}

TEST(ForwardingDelayTest, NegativeEstimateOnIcmpPenalisedNetwork) {
  scenario::TestbedOptions o = calm_options(59, 0.0);
  o.latency.jitter_mean_ms = 1e-7;
  o.latency.jitter_spike_prob = 0;
  scenario::Testbed tb = scenario::planetlab31(o);
  const auto x = tb.fp(3);
  simnet::NetworkPolicy bias;
  bias.icmp_extra_ms = 15.0;  // ping much slower than Tor
  tb.net().latency().set_policy(tb.host_of(x), bias);

  TingMeasurer measurer(tb.ting());
  ForwardingDelayEstimator est(measurer, 100);
  const ForwardingDelayResult r = est.measure_blocking(x);
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_LT(r.icmp_based_ms, -5.0);          // the Fig 5 anomaly
  EXPECT_GT(r.tcp_based_ms, -1.0);           // TCP probe unaffected here
}

// ------------------------------------------------------------------ matrix

dir::Fingerprint fake_fp(std::uint8_t b) {
  crypto::X25519Key k;
  k.fill(b);
  return dir::Fingerprint::of_identity(k);
}

TEST(RttMatrixTest, SymmetricSetGet) {
  RttMatrix m;
  m.set(fake_fp(1), fake_fp(2), 42.5);
  EXPECT_EQ(m.rtt(fake_fp(1), fake_fp(2)), 42.5);
  EXPECT_EQ(m.rtt(fake_fp(2), fake_fp(1)), 42.5);
  EXPECT_FALSE(m.rtt(fake_fp(1), fake_fp(3)).has_value());
  EXPECT_TRUE(m.contains(fake_fp(2), fake_fp(1)));
  EXPECT_EQ(m.size(), 1u);
}

TEST(RttMatrixTest, RejectsSelfPairs) {
  RttMatrix m;
  EXPECT_THROW(m.set(fake_fp(1), fake_fp(1), 1.0), CheckError);
}

TEST(RttMatrixTest, OverwriteAndStats) {
  RttMatrix m;
  m.set(fake_fp(1), fake_fp(2), 10.0);
  m.set(fake_fp(2), fake_fp(1), 20.0);  // overwrite, symmetric key
  m.set(fake_fp(1), fake_fp(3), 40.0);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m.mean_rtt(), 30.0);
  EXPECT_EQ(m.nodes().size(), 3u);
  EXPECT_EQ(m.values().size(), 2u);
}

TEST(RttMatrixTest, FreshnessWindow) {
  RttMatrix m;
  const TimePoint t0 = TimePoint::from_ns(0);
  m.set(fake_fp(1), fake_fp(2), 5.0, t0 + Duration::seconds(100), 10);
  EXPECT_TRUE(m.is_fresh(fake_fp(1), fake_fp(2),
                         t0 + Duration::seconds(150), Duration::seconds(60)));
  EXPECT_FALSE(m.is_fresh(fake_fp(1), fake_fp(2),
                          t0 + Duration::seconds(200), Duration::seconds(60)));
  EXPECT_FALSE(m.is_fresh(fake_fp(1), fake_fp(3), t0, Duration::seconds(60)));
}

TEST(RttMatrixTest, CsvRoundTrip) {
  RttMatrix m;
  m.set(fake_fp(1), fake_fp(2), 12.25, TimePoint::from_ns(777), 200);
  m.set(fake_fp(3), fake_fp(4), 99.5, TimePoint::from_ns(888), 100);
  const RttMatrix n = RttMatrix::from_csv(m.to_csv());
  EXPECT_EQ(n.size(), 2u);
  EXPECT_EQ(n.rtt(fake_fp(2), fake_fp(1)), 12.25);
  const auto* e = n.entry(fake_fp(3), fake_fp(4));
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->measured_at.ns(), 888);
  EXPECT_EQ(e->samples, 100);
}

TEST(RttMatrixTest, CsvRejectsGarbage) {
  EXPECT_THROW(RttMatrix::from_csv("header\nnot,enough"), CheckError);
}

TEST(RttMatrixTest, CsvRejectsCorruptNumericFields) {
  const std::string a = fake_fp(1).hex(), b = fake_fp(2).hex();
  const std::string header = "fp_a,fp_b,rtt_ms,measured_at_ns,samples\n";
  // Non-numeric rtt: stod would throw std::invalid_argument; we want a
  // CheckError naming the row instead.
  EXPECT_THROW(RttMatrix::from_csv(header + a + "," + b + ",oops,777,200"),
               CheckError);
  // Trailing garbage after a valid prefix ("12.5x") must also be rejected.
  EXPECT_THROW(RttMatrix::from_csv(header + a + "," + b + ",12.5x,777,200"),
               CheckError);
  // Out-of-range timestamp (std::out_of_range from stoll).
  EXPECT_THROW(RttMatrix::from_csv(header + a + "," + b +
                                   ",12.5,99999999999999999999999999,200"),
               CheckError);
  // Non-numeric sample count.
  EXPECT_THROW(RttMatrix::from_csv(header + a + "," + b + ",12.5,777,many"),
               CheckError);
  // The error message should carry the offending line for debugging.
  try {
    RttMatrix::from_csv(header + a + "," + b + ",oops,777,200");
    FAIL() << "expected CheckError";
  } catch (const CheckError& e) {
    EXPECT_NE(std::string(e.what()).find("oops"), std::string::npos);
  }
}

}  // namespace
}  // namespace ting::meas

namespace ting::meas {
namespace {

TEST(TingMeasurerTest, TransientBuildFailureIsRetried) {
  scenario::Testbed tb = scenario::planetlab31(calm_options(61));
  TingConfig cfg;
  cfg.samples = 20;
  cfg.sample_timeout = Duration::seconds(2);
  cfg.build_timeout = Duration::seconds(15);
  cfg.max_build_attempts = 20;
  TingMeasurer measurer(tb.ting(), cfg);

  // Crash x, start the measurement, and revive x shortly after: early
  // attempts fail fast (connection refused -> DESTROY), a later retry
  // succeeds.
  const auto x = tb.fp(6), y = tb.fp(19);
  tb.net().set_host_down(tb.host_of(x));
  std::optional<PairResult> result;
  measurer.measure(x, y, [&](PairResult r) { result = std::move(r); });
  tb.loop().run_until(tb.loop().now() + Duration::seconds(3));
  EXPECT_FALSE(result.has_value());  // still retrying
  tb.net().set_host_down(tb.host_of(x), false);
  tb.loop().run_while_waiting_for([&] { return result.has_value(); },
                                  Duration::seconds(36000));
  ASSERT_TRUE(result.has_value());
  EXPECT_TRUE(result->ok) << result->error;
}

TEST(TingMeasurerTest, AttemptsAreBounded) {
  scenario::Testbed tb = scenario::planetlab31(calm_options(62));
  TingConfig cfg;
  cfg.samples = 10;
  cfg.sample_timeout = Duration::seconds(1);
  cfg.build_timeout = Duration::seconds(5);
  cfg.max_build_attempts = 2;
  TingMeasurer measurer(tb.ting(), cfg);

  const auto x = tb.fp(7), y = tb.fp(20);
  tb.net().set_host_down(tb.host_of(x));  // permanently down
  const TimePoint before = tb.loop().now();
  const PairResult r = measurer.measure_blocking(x, y);
  EXPECT_FALSE(r.ok);
  // Two attempts' worth of deadline, not more.
  const double budget_s =
      2 * (cfg.build_timeout + cfg.sample_timeout * cfg.samples).sec();
  EXPECT_LE((tb.loop().now() - before).sec(), budget_s + 5.0);
}

}  // namespace
}  // namespace ting::meas
