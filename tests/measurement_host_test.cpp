// Tests for the MeasurementHost apparatus (§3.3's s/d/w/z deployment):
// descriptor injection, z's restrictive exit policy, controller session
// setup (including __LeaveStreamsUnattached), and end-to-end wiring via
// the control protocol only.
#include <gtest/gtest.h>

#include "scenario/testbed.h"
#include "ting/measurement_host.h"
#include "ting/measurer.h"

namespace ting::meas {
namespace {

scenario::TestbedOptions calm(std::uint64_t seed) {
  scenario::TestbedOptions o;
  o.seed = seed;
  o.differential_fraction = 0;
  o.latency.jitter_mean_ms = 0.02;
  o.latency.jitter_spike_prob = 0;
  return o;
}

TEST(MeasurementHostTest, LocalRelaysAreInjectedNotPublished) {
  scenario::TestbedOptions o = calm(501);
  o.start_measurement_host = false;
  scenario::Testbed tb = scenario::planetlab31(o);
  // The OP knows w and z (hard-coded descriptors)...
  EXPECT_NE(tb.ting().op().consensus().find(tb.ting().w_fp()), nullptr);
  EXPECT_NE(tb.ting().op().consensus().find(tb.ting().z_fp()), nullptr);
  // ...but the testbed's own consensus does not carry them (never
  // published, per the PublishDescriptors 0 route).
  EXPECT_EQ(tb.consensus().find(tb.ting().w_fp()), nullptr);
  EXPECT_EQ(tb.consensus().find(tb.ting().z_fp()), nullptr);
}

TEST(MeasurementHostTest, ZExitsOnlyToOurHost) {
  scenario::TestbedOptions o = calm(502);
  o.start_measurement_host = false;
  scenario::Testbed tb = scenario::planetlab31(o);
  const auto& z = tb.ting().z();
  const IpAddr home = tb.net().ip_of(tb.measurement_host());
  EXPECT_TRUE(z.descriptor().exit_policy.allows(home, 4242));
  EXPECT_TRUE(z.descriptor().exit_policy.allows(home, 80));
  EXPECT_FALSE(z.descriptor().exit_policy.allows(IpAddr(8, 8, 8, 8), 4242));
  // w never exits.
  EXPECT_FALSE(tb.ting().w().descriptor().exit_policy.allows_anything());
  EXPECT_TRUE(z.descriptor().has_flag(dir::kFlagExit));
}

TEST(MeasurementHostTest, StartEstablishesControllerAndManualAttachment) {
  scenario::Testbed tb = scenario::planetlab31(calm(503));
  EXPECT_TRUE(tb.ting().ready());
  // SETCONF __LeaveStreamsUnattached took effect: SOCKS streams wait.
  EXPECT_TRUE(tb.ting().op().config().leave_streams_unattached);
}

TEST(MeasurementHostTest, AllFourProcessesShareTheHost) {
  scenario::TestbedOptions o = calm(504);
  o.start_measurement_host = false;
  scenario::Testbed tb = scenario::planetlab31(o);
  const IpAddr home = tb.net().ip_of(tb.measurement_host());
  EXPECT_EQ(tb.ting().w().descriptor().address, home);
  EXPECT_EQ(tb.ting().z().descriptor().address, home);
  EXPECT_EQ(tb.ting().echo_endpoint().ip, home);
  EXPECT_EQ(tb.ting().socks_endpoint().ip, home);
  // Distinct ports, of course.
  EXPECT_NE(tb.ting().w().descriptor().or_port,
            tb.ting().z().descriptor().or_port);
}

TEST(MeasurementHostTest, MeasurementUsesOnlyControlPlaneInterfaces) {
  // A full pair measurement drives w and z: both must have processed cells
  // (i.e., the measurement really went through our relays, not around
  // them), and every circuit is cleaned up afterwards.
  scenario::Testbed tb = scenario::planetlab31(calm(505));
  TingConfig cfg;
  cfg.samples = 30;
  TingMeasurer measurer(tb.ting(), cfg);
  const PairResult r = measurer.measure_blocking(tb.fp(1), tb.fp(7));
  ASSERT_TRUE(r.ok) << r.error;
  EXPECT_GT(tb.ting().w().cells_processed(), 90u);  // 3 circuits x 30 echos
  EXPECT_GT(tb.ting().z().cells_processed(), 90u);
  tb.loop().run_until(tb.loop().now() + Duration::seconds(5));
  EXPECT_EQ(tb.ting().w().open_circuits(), 0u);
  EXPECT_EQ(tb.ting().z().open_circuits(), 0u);
}

}  // namespace
}  // namespace ting::meas
