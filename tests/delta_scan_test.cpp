// Property tests for the consensus-delta planner: churn produces exactly
// the new/expired pairs with no duplicates, priority order holds (new pairs
// first, expired oldest-first), budgets cut from the back, and the
// ConsensusDeltaTracker reports joins/leaves correctly.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "ting/delta_scan.h"
#include "ting/sparse_matrix.h"
#include "util/rng.h"

namespace ting::meas {
namespace {

dir::Fingerprint fp(std::size_t i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%040zx", i);
  return dir::Fingerprint::from_hex(buf);
}

TimePoint at(std::int64_t s) { return TimePoint::from_ns(s * 1'000'000'000); }

std::vector<dir::Fingerprint> node_set(std::size_t n) {
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(fp(i));
  return nodes;
}

std::size_t all_pairs(std::size_t n) { return n * (n - 1) / 2; }

/// No pair appears twice in a plan, in either orientation.
void expect_no_duplicates(const DeltaPlan& plan) {
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& [i, j] : plan.pairs) {
    EXPECT_NE(i, j);
    const auto key = std::minmax(i, j);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate pair (" << i << "," << j << ")";
  }
}

TEST(DeltaScanTest, EmptyMatrixPlansAllPairs) {
  const auto nodes = node_set(7);
  const DeltaPlan plan = plan_delta(SparseRttMatrix{}, nodes, at(100));
  EXPECT_EQ(plan.pairs.size(), all_pairs(7));
  EXPECT_EQ(plan.new_pairs, all_pairs(7));
  EXPECT_EQ(plan.expired_pairs, 0u);
  EXPECT_EQ(plan.fresh_pairs, 0u);
  EXPECT_EQ(plan.dropped_over_budget, 0u);
  expect_no_duplicates(plan);
}

TEST(DeltaScanTest, FullyFreshMatrixPlansNothing) {
  const auto nodes = node_set(6);
  SparseRttMatrix m;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      m.set(nodes[i], nodes[j], 10.0, at(95), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  const DeltaPlan plan = plan_delta(m, nodes, at(100), opt);
  EXPECT_TRUE(plan.pairs.empty());
  EXPECT_EQ(plan.fresh_pairs, all_pairs(6));
}

TEST(DeltaScanTest, ChurnYieldsExactlyNewAndExpiredPairs) {
  // Matrix covers nodes {0..4} freshly except: pair (1,2) is expired, and
  // node 5 just joined (all 5 of its pairs are new). Nothing else plans.
  const auto nodes = node_set(6);
  SparseRttMatrix m;
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j)
      m.set(nodes[i], nodes[j], 10.0, (i == 1 && j == 2) ? at(10) : at(95), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  const DeltaPlan plan = plan_delta(m, nodes, at(100), opt);
  EXPECT_EQ(plan.new_pairs, 5u);
  EXPECT_EQ(plan.expired_pairs, 1u);
  EXPECT_EQ(plan.fresh_pairs, all_pairs(5) - 1);
  ASSERT_EQ(plan.pairs.size(), 6u);
  expect_no_duplicates(plan);
  // New pairs come first; the expired pair is last.
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_TRUE(plan.pairs[k].first == 5 || plan.pairs[k].second == 5);
  EXPECT_EQ(plan.pairs.back(), (std::pair<std::size_t, std::size_t>{1, 2}));
}

TEST(DeltaScanTest, ExpiredPairsPlannedOldestFirst) {
  const auto nodes = node_set(4);
  SparseRttMatrix m;
  m.set(nodes[0], nodes[1], 1.0, at(30), 1);
  m.set(nodes[0], nodes[2], 1.0, at(10), 1);
  m.set(nodes[0], nodes[3], 1.0, at(20), 1);
  m.set(nodes[1], nodes[2], 1.0, at(95), 1);  // fresh
  m.set(nodes[1], nodes[3], 1.0, at(95), 1);  // fresh
  m.set(nodes[2], nodes[3], 1.0, at(95), 1);  // fresh
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  const DeltaPlan plan = plan_delta(m, nodes, at(100), opt);
  ASSERT_EQ(plan.pairs.size(), 3u);
  EXPECT_EQ(plan.pairs[0], (std::pair<std::size_t, std::size_t>{0, 2}));  // t=10
  EXPECT_EQ(plan.pairs[1], (std::pair<std::size_t, std::size_t>{0, 3}));  // t=20
  EXPECT_EQ(plan.pairs[2], (std::pair<std::size_t, std::size_t>{0, 1}));  // t=30
}

TEST(DeltaScanTest, BudgetKeepsNewPairsOverExpired) {
  // 3 new pairs (node 3 joined a 4-node set) + 3 expired; budget 4 must
  // keep all 3 new pairs and only the single oldest expired pair.
  const auto nodes = node_set(4);
  SparseRttMatrix m;
  m.set(nodes[0], nodes[1], 1.0, at(30), 1);
  m.set(nodes[0], nodes[2], 1.0, at(10), 1);
  m.set(nodes[1], nodes[2], 1.0, at(20), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  opt.budget = 4;
  const DeltaPlan plan = plan_delta(m, nodes, at(100), opt);
  // new/expired count the census (pre-budget); the cut shows up in
  // dropped_over_budget and the worklist length.
  EXPECT_EQ(plan.new_pairs, 3u);
  EXPECT_EQ(plan.expired_pairs, 3u);
  EXPECT_EQ(plan.dropped_over_budget, 2u);
  ASSERT_EQ(plan.pairs.size(), 4u);
  expect_no_duplicates(plan);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_TRUE(plan.pairs[k].first == 3 || plan.pairs[k].second == 3);
  EXPECT_EQ(plan.pairs[3], (std::pair<std::size_t, std::size_t>{0, 2}));  // t=10
}

TEST(DeltaScanTest, BudgetTruncatesNewPairs) {
  const auto nodes = node_set(6);
  DeltaPlanOptions opt;
  opt.budget = 4;
  const DeltaPlan plan = plan_delta(SparseRttMatrix{}, nodes, at(1), opt);
  EXPECT_EQ(plan.pairs.size(), 4u);
  EXPECT_EQ(plan.new_pairs, all_pairs(6));  // census, not kept
  EXPECT_EQ(plan.dropped_over_budget, all_pairs(6) - 4);
  expect_no_duplicates(plan);
}

TEST(DeltaScanTest, BudgetedExpiredSelectionMatchesFullSort) {
  // The bounded-heap cut must select exactly the same pairs, in the same
  // order, as sorting every expired candidate and taking the oldest K.
  const auto nodes = node_set(10);
  SparseRttMatrix m;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      m.set(nodes[i], nodes[j], 1.0, at((t = (t * 31 + 17) % 80)), 1);
  DeltaPlanOptions unbounded;
  unbounded.ttl = Duration::seconds(10);
  DeltaPlanOptions bounded = unbounded;
  bounded.budget = 11;
  const DeltaPlan full = plan_delta(m, nodes, at(100), unbounded);
  const DeltaPlan cut = plan_delta(m, nodes, at(100), bounded);
  ASSERT_EQ(cut.pairs.size(), 11u);
  EXPECT_EQ(cut.dropped_over_budget, full.pairs.size() - 11);
  for (std::size_t k = 0; k < 11; ++k) EXPECT_EQ(cut.pairs[k], full.pairs[k]);
}

TEST(DeltaScanTest, PlanIsPureFunctionOfInputs) {
  const auto nodes = node_set(8);
  SparseRttMatrix m;
  m.set(nodes[2], nodes[5], 1.0, at(3), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(50);
  opt.budget = 9;
  const DeltaPlan p1 = plan_delta(m, nodes, at(100), opt);
  const DeltaPlan p2 = plan_delta(m, nodes, at(100), opt);
  EXPECT_EQ(p1.pairs, p2.pairs);
}

/// The incremental planner's equivalence contract: identical pairs and
/// identical census counters versus plan_delta over the same inputs.
void expect_same_plan(const DeltaPlan& inc, const DeltaPlan& full,
                      const char* label) {
  EXPECT_EQ(inc.pairs, full.pairs) << label;
  EXPECT_EQ(inc.new_pairs, full.new_pairs) << label;
  EXPECT_EQ(inc.expired_pairs, full.expired_pairs) << label;
  EXPECT_EQ(inc.fresh_pairs, full.fresh_pairs) << label;
  EXPECT_EQ(inc.dropped_over_budget, full.dropped_over_budget) << label;
}

TEST(DeltaScanTest, IncrementalUnprimedMatchesFullCensus) {
  const auto nodes = node_set(8);
  SparseRttMatrix m;
  m.set(nodes[1], nodes[4], 1.0, at(5), 1);   // expired
  m.set(nodes[2], nodes[6], 1.0, at(95), 1);  // fresh
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  IncrementalDeltaPlanner planner;
  EXPECT_FALSE(planner.primed());
  const DeltaPlan full = plan_delta(m, nodes, at(100), opt);
  const DeltaPlan inc =
      planner.plan_delta_incremental(m, nodes, {}, at(100), opt);
  expect_same_plan(inc, full, "bootstrap census");
  EXPECT_TRUE(planner.primed());
  EXPECT_EQ(planner.backlog_pairs(), full.new_pairs);
  // reset() forgets the backlog; the next call is a full census again.
  planner.reset();
  EXPECT_FALSE(planner.primed());
  const DeltaPlan again =
      planner.plan_delta_incremental(m, nodes, {}, at(100), opt);
  expect_same_plan(again, full, "post-reset census");
}

TEST(DeltaScanTest, IncrementalMatchesFullAcrossChurnEpochs) {
  // A 12-epoch randomized daemon life: membership churns (joins, leaves,
  // rejoins), each epoch absorbs only a prefix of its plan (failures and
  // budget cuts leave pairs missing), stamps age past the TTL, and budgets
  // alternate between unlimited and tight. At every epoch the incremental
  // plan must be identical to the from-scratch census.
  Rng rng(1234);
  const std::size_t universe = 16;
  std::vector<bool> member(universe, false);
  for (std::size_t i = 0; i < 10; ++i) member[i] = true;
  SparseRttMatrix m;
  IncrementalDeltaPlanner planner;
  ConsensusDeltaTracker tracker;
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(30);
  for (int epoch = 0; epoch < 12; ++epoch) {
    // Contract (a): survivors keep construction-order enumeration.
    std::vector<dir::Fingerprint> nodes;
    for (std::size_t i = 0; i < universe; ++i)
      if (member[i]) nodes.push_back(fp(i));
    const auto delta = tracker.observe(nodes);
    opt.budget = (epoch % 3 == 0)
                     ? 0
                     : static_cast<std::size_t>(rng.uniform_int(1, 25));
    const TimePoint now = at(100 + epoch * 10);
    const DeltaPlan full = plan_delta(m, nodes, now, opt);
    const DeltaPlan inc =
        planner.plan_delta_incremental(m, nodes, delta.joined, now, opt);
    char label[32];
    std::snprintf(label, sizeof(label), "epoch %d", epoch);
    expect_same_plan(inc, full, label);
    expect_no_duplicates(inc);
    // Absorb a random prefix of the plan — the daemon stamps at the epoch
    // clock, and an interrupted epoch leaves the tail unmeasured.
    const std::size_t done =
        full.pairs.empty()
            ? 0
            : static_cast<std::size_t>(rng.uniform_int(
                  0, static_cast<std::int64_t>(full.pairs.size())));
    for (std::size_t k = 0; k < done; ++k)
      m.set(nodes[full.pairs[k].first], nodes[full.pairs[k].second], 5.0, now,
            1);
    // Flip a couple of memberships (leaves keep their matrix entries, per
    // contract (c); rejoins arrive through the tracker's joined set).
    for (int c = 0; c < 2; ++c) {
      const auto v =
          static_cast<std::size_t>(rng.uniform_int(0, universe - 1));
      member[v] = !member[v];
    }
    if (std::count(member.begin(), member.end(), true) < 2)
      member[0] = member[1] = true;
  }
}

TEST(DeltaScanTest, EqualStampBudgetCutIsDeterministicPrefix) {
  // The daemon restamps a whole epoch with one clock value, so most expired
  // candidates tie on measured_at. The tie must break on the pair index:
  // the budgeted plan is exactly the unbudgeted plan's prefix, on both the
  // full-sort path and the bounded-heap path, and the incremental planner
  // agrees.
  const auto nodes = node_set(9);
  SparseRttMatrix m;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      m.set(nodes[i], nodes[j], 1.0, at(5), 1);
  DeltaPlanOptions unbounded;
  unbounded.ttl = Duration::seconds(10);
  DeltaPlanOptions bounded = unbounded;
  bounded.budget = 7;
  const DeltaPlan full = plan_delta(m, nodes, at(100), unbounded);
  const DeltaPlan cut = plan_delta(m, nodes, at(100), bounded);
  ASSERT_EQ(full.pairs.size(), all_pairs(9));
  ASSERT_EQ(cut.pairs.size(), 7u);
  for (std::size_t k = 0; k < 7; ++k) EXPECT_EQ(cut.pairs[k], full.pairs[k]);
  IncrementalDeltaPlanner planner;
  const DeltaPlan inc =
      planner.plan_delta_incremental(m, nodes, {}, at(100), bounded);
  expect_same_plan(inc, cut, "equal-stamp budgeted");
}

TEST(DeltaScanTest, ExpiredBeforeIsStrictTotalOrder) {
  const ExpiredCandidate a{1, 2, at(10)};
  const ExpiredCandidate b{0, 3, at(20)};
  const ExpiredCandidate c{1, 3, at(10)};
  const ExpiredCandidate d{1, 2, at(10)};
  EXPECT_TRUE(expired_before(a, b));   // older stamp wins
  EXPECT_FALSE(expired_before(b, a));
  EXPECT_TRUE(expired_before(a, c));   // equal stamps: index pair decides
  EXPECT_FALSE(expired_before(c, a));
  EXPECT_FALSE(expired_before(a, d));  // irreflexive on equals
}

TEST(DeltaScanTest, IncrementalFreshPlannerRederivesCrashedEpoch) {
  // A crash-resumed daemon process constructs a brand-new planner against
  // the persisted matrix. Its first (unprimed) call must re-derive exactly
  // the worklist the crashed process was running — and re-planning the same
  // epoch twice (a stale journal replay) is idempotent.
  const auto nodes = node_set(10);
  SparseRttMatrix m;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      t = (t * 31 + 17) % 90;
      if (t % 3 == 0) continue;  // leave holes (missing pairs)
      m.set(nodes[i], nodes[j], 1.0, at(t), 1);
    }
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(25);
  opt.budget = 13;
  IncrementalDeltaPlanner survivor;
  (void)survivor.plan_delta_incremental(m, nodes, {}, at(60), opt);
  const DeltaPlan primed =
      survivor.plan_delta_incremental(m, nodes, {}, at(100), opt);
  IncrementalDeltaPlanner restarted;
  const DeltaPlan resumed =
      restarted.plan_delta_incremental(m, nodes, {}, at(100), opt);
  const DeltaPlan full = plan_delta(m, nodes, at(100), opt);
  expect_same_plan(primed, full, "primed replan");
  expect_same_plan(resumed, full, "fresh-planner resume");
  // Stale-journal replay: same inputs again, same plan again.
  const DeltaPlan replay =
      restarted.plan_delta_incremental(m, nodes, {}, at(100), opt);
  expect_same_plan(replay, full, "journal replay");
}

TEST(DeltaScanTest, IncrementalResetRequiredAfterEraseRelay) {
  const auto nodes = node_set(6);
  SparseRttMatrix m;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      m.set(nodes[i], nodes[j], 1.0, at(95), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  IncrementalDeltaPlanner planner;
  (void)planner.plan_delta_incremental(m, nodes, {}, at(100), opt);
  // erase_relay() removes entries, which the backlog cannot observe —
  // contract (c) says reset. After reset the census sees the new holes.
  m.erase_relay(nodes[2]);
  planner.reset();
  const DeltaPlan full = plan_delta(m, nodes, at(100), opt);
  const DeltaPlan inc =
      planner.plan_delta_incremental(m, nodes, {}, at(100), opt);
  expect_same_plan(inc, full, "post-erase census");
  EXPECT_EQ(full.new_pairs, 5u);  // every pair touching the erased relay
}

TEST(DeltaScanTest, TrackerReportsJoinsAndLeaves) {
  ConsensusDeltaTracker tracker;
  const auto first = tracker.observe({fp(1), fp(2), fp(3)});
  EXPECT_EQ(first.joined.size(), 3u);
  EXPECT_TRUE(first.left.empty());

  const auto delta = tracker.observe({fp(2), fp(3), fp(4), fp(5)});
  ASSERT_EQ(delta.joined.size(), 2u);
  EXPECT_EQ(delta.joined[0], fp(4));
  EXPECT_EQ(delta.joined[1], fp(5));
  ASSERT_EQ(delta.left.size(), 1u);
  EXPECT_EQ(delta.left[0], fp(1));
  EXPECT_EQ(tracker.current().size(), 4u);

  const auto none = tracker.observe({fp(2), fp(3), fp(4), fp(5)});
  EXPECT_TRUE(none.joined.empty());
  EXPECT_TRUE(none.left.empty());
}

}  // namespace
}  // namespace ting::meas
