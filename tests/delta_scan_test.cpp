// Property tests for the consensus-delta planner: churn produces exactly
// the new/expired pairs with no duplicates, priority order holds (new pairs
// first, expired oldest-first), budgets cut from the back, and the
// ConsensusDeltaTracker reports joins/leaves correctly.
#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <utility>
#include <vector>

#include "ting/delta_scan.h"
#include "ting/sparse_matrix.h"

namespace ting::meas {
namespace {

dir::Fingerprint fp(std::size_t i) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%040zx", i);
  return dir::Fingerprint::from_hex(buf);
}

TimePoint at(std::int64_t s) { return TimePoint::from_ns(s * 1'000'000'000); }

std::vector<dir::Fingerprint> node_set(std::size_t n) {
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < n; ++i) nodes.push_back(fp(i));
  return nodes;
}

std::size_t all_pairs(std::size_t n) { return n * (n - 1) / 2; }

/// No pair appears twice in a plan, in either orientation.
void expect_no_duplicates(const DeltaPlan& plan) {
  std::set<std::pair<std::size_t, std::size_t>> seen;
  for (const auto& [i, j] : plan.pairs) {
    EXPECT_NE(i, j);
    const auto key = std::minmax(i, j);
    EXPECT_TRUE(seen.insert(key).second)
        << "duplicate pair (" << i << "," << j << ")";
  }
}

TEST(DeltaScanTest, EmptyMatrixPlansAllPairs) {
  const auto nodes = node_set(7);
  const DeltaPlan plan = plan_delta(SparseRttMatrix{}, nodes, at(100));
  EXPECT_EQ(plan.pairs.size(), all_pairs(7));
  EXPECT_EQ(plan.new_pairs, all_pairs(7));
  EXPECT_EQ(plan.expired_pairs, 0u);
  EXPECT_EQ(plan.fresh_pairs, 0u);
  EXPECT_EQ(plan.dropped_over_budget, 0u);
  expect_no_duplicates(plan);
}

TEST(DeltaScanTest, FullyFreshMatrixPlansNothing) {
  const auto nodes = node_set(6);
  SparseRttMatrix m;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      m.set(nodes[i], nodes[j], 10.0, at(95), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  const DeltaPlan plan = plan_delta(m, nodes, at(100), opt);
  EXPECT_TRUE(plan.pairs.empty());
  EXPECT_EQ(plan.fresh_pairs, all_pairs(6));
}

TEST(DeltaScanTest, ChurnYieldsExactlyNewAndExpiredPairs) {
  // Matrix covers nodes {0..4} freshly except: pair (1,2) is expired, and
  // node 5 just joined (all 5 of its pairs are new). Nothing else plans.
  const auto nodes = node_set(6);
  SparseRttMatrix m;
  for (std::size_t i = 0; i < 5; ++i)
    for (std::size_t j = i + 1; j < 5; ++j)
      m.set(nodes[i], nodes[j], 10.0, (i == 1 && j == 2) ? at(10) : at(95), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  const DeltaPlan plan = plan_delta(m, nodes, at(100), opt);
  EXPECT_EQ(plan.new_pairs, 5u);
  EXPECT_EQ(plan.expired_pairs, 1u);
  EXPECT_EQ(plan.fresh_pairs, all_pairs(5) - 1);
  ASSERT_EQ(plan.pairs.size(), 6u);
  expect_no_duplicates(plan);
  // New pairs come first; the expired pair is last.
  for (std::size_t k = 0; k < 5; ++k)
    EXPECT_TRUE(plan.pairs[k].first == 5 || plan.pairs[k].second == 5);
  EXPECT_EQ(plan.pairs.back(), (std::pair<std::size_t, std::size_t>{1, 2}));
}

TEST(DeltaScanTest, ExpiredPairsPlannedOldestFirst) {
  const auto nodes = node_set(4);
  SparseRttMatrix m;
  m.set(nodes[0], nodes[1], 1.0, at(30), 1);
  m.set(nodes[0], nodes[2], 1.0, at(10), 1);
  m.set(nodes[0], nodes[3], 1.0, at(20), 1);
  m.set(nodes[1], nodes[2], 1.0, at(95), 1);  // fresh
  m.set(nodes[1], nodes[3], 1.0, at(95), 1);  // fresh
  m.set(nodes[2], nodes[3], 1.0, at(95), 1);  // fresh
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  const DeltaPlan plan = plan_delta(m, nodes, at(100), opt);
  ASSERT_EQ(plan.pairs.size(), 3u);
  EXPECT_EQ(plan.pairs[0], (std::pair<std::size_t, std::size_t>{0, 2}));  // t=10
  EXPECT_EQ(plan.pairs[1], (std::pair<std::size_t, std::size_t>{0, 3}));  // t=20
  EXPECT_EQ(plan.pairs[2], (std::pair<std::size_t, std::size_t>{0, 1}));  // t=30
}

TEST(DeltaScanTest, BudgetKeepsNewPairsOverExpired) {
  // 3 new pairs (node 3 joined a 4-node set) + 3 expired; budget 4 must
  // keep all 3 new pairs and only the single oldest expired pair.
  const auto nodes = node_set(4);
  SparseRttMatrix m;
  m.set(nodes[0], nodes[1], 1.0, at(30), 1);
  m.set(nodes[0], nodes[2], 1.0, at(10), 1);
  m.set(nodes[1], nodes[2], 1.0, at(20), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(10);
  opt.budget = 4;
  const DeltaPlan plan = plan_delta(m, nodes, at(100), opt);
  // new/expired count the census (pre-budget); the cut shows up in
  // dropped_over_budget and the worklist length.
  EXPECT_EQ(plan.new_pairs, 3u);
  EXPECT_EQ(plan.expired_pairs, 3u);
  EXPECT_EQ(plan.dropped_over_budget, 2u);
  ASSERT_EQ(plan.pairs.size(), 4u);
  expect_no_duplicates(plan);
  for (std::size_t k = 0; k < 3; ++k)
    EXPECT_TRUE(plan.pairs[k].first == 3 || plan.pairs[k].second == 3);
  EXPECT_EQ(plan.pairs[3], (std::pair<std::size_t, std::size_t>{0, 2}));  // t=10
}

TEST(DeltaScanTest, BudgetTruncatesNewPairs) {
  const auto nodes = node_set(6);
  DeltaPlanOptions opt;
  opt.budget = 4;
  const DeltaPlan plan = plan_delta(SparseRttMatrix{}, nodes, at(1), opt);
  EXPECT_EQ(plan.pairs.size(), 4u);
  EXPECT_EQ(plan.new_pairs, all_pairs(6));  // census, not kept
  EXPECT_EQ(plan.dropped_over_budget, all_pairs(6) - 4);
  expect_no_duplicates(plan);
}

TEST(DeltaScanTest, BudgetedExpiredSelectionMatchesFullSort) {
  // The bounded-heap cut must select exactly the same pairs, in the same
  // order, as sorting every expired candidate and taking the oldest K.
  const auto nodes = node_set(10);
  SparseRttMatrix m;
  std::int64_t t = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      m.set(nodes[i], nodes[j], 1.0, at((t = (t * 31 + 17) % 80)), 1);
  DeltaPlanOptions unbounded;
  unbounded.ttl = Duration::seconds(10);
  DeltaPlanOptions bounded = unbounded;
  bounded.budget = 11;
  const DeltaPlan full = plan_delta(m, nodes, at(100), unbounded);
  const DeltaPlan cut = plan_delta(m, nodes, at(100), bounded);
  ASSERT_EQ(cut.pairs.size(), 11u);
  EXPECT_EQ(cut.dropped_over_budget, full.pairs.size() - 11);
  for (std::size_t k = 0; k < 11; ++k) EXPECT_EQ(cut.pairs[k], full.pairs[k]);
}

TEST(DeltaScanTest, PlanIsPureFunctionOfInputs) {
  const auto nodes = node_set(8);
  SparseRttMatrix m;
  m.set(nodes[2], nodes[5], 1.0, at(3), 1);
  DeltaPlanOptions opt;
  opt.ttl = Duration::seconds(50);
  opt.budget = 9;
  const DeltaPlan p1 = plan_delta(m, nodes, at(100), opt);
  const DeltaPlan p2 = plan_delta(m, nodes, at(100), opt);
  EXPECT_EQ(p1.pairs, p2.pairs);
}

TEST(DeltaScanTest, TrackerReportsJoinsAndLeaves) {
  ConsensusDeltaTracker tracker;
  const auto first = tracker.observe({fp(1), fp(2), fp(3)});
  EXPECT_EQ(first.joined.size(), 3u);
  EXPECT_TRUE(first.left.empty());

  const auto delta = tracker.observe({fp(2), fp(3), fp(4), fp(5)});
  ASSERT_EQ(delta.joined.size(), 2u);
  EXPECT_EQ(delta.joined[0], fp(4));
  EXPECT_EQ(delta.joined[1], fp(5));
  ASSERT_EQ(delta.left.size(), 1u);
  EXPECT_EQ(delta.left[0], fp(1));
  EXPECT_EQ(tracker.current().size(), 4u);

  const auto none = tracker.observe({fp(2), fp(3), fp(4), fp(5)});
  EXPECT_TRUE(none.joined.empty());
  EXPECT_TRUE(none.left.empty());
}

}  // namespace
}  // namespace ting::meas
