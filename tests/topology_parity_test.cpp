// Parity between the shared-immutable-topology worlds and the legacy
// clone-per-shard worlds: for the same seed and shard count the two
// construction paths must be indistinguishable in every scan artifact —
// merged matrix CSV, merged half-circuit cache CSV, and the daemon's
// on-disk matrix — including with a fault plan active. This pins the
// tentpole refactor's contract: sharing the topology is a pure setup-cost
// optimization, never a behavioural change.
//
// Note this is parity at the SAME shard count W. Bit-identity ACROSS W
// (sharded_scan_test) holds only without faults, because fault windows fire
// at per-shard virtual times; shared-vs-legacy parity has no such caveat —
// both paths build worlds with identical streams, so they agree even when
// faults are active.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "scenario/daemon_world.h"
#include "scenario/shard_world.h"
#include "ting/daemon.h"
#include "ting/half_circuit_cache.h"
#include "ting/scheduler.h"
#include "ting/sharded_scan.h"

namespace ting::meas {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  EXPECT_TRUE(f.good()) << "missing file: " << path;
  std::ostringstream os;
  os << f.rdbuf();
  return os.str();
}

scenario::ShardWorldOptions faulted_scan_world(bool share_topology) {
  scenario::ShardWorldOptions o;
  o.relays = 10;
  o.scan_nodes = 8;
  o.testbed.seed = 51;
  o.testbed.differential_fraction = 0;
  o.ting.samples = 10;
  o.fault_spec = "loss:*:0.03";
  o.share_topology = share_topology;
  return o;
}

struct ScanArtifacts {
  std::string matrix_csv;
  std::string halves_csv;
  ScanReport report;
};

ScanArtifacts run_sharded_scan(bool share_topology, std::size_t shards) {
  const scenario::ShardWorldOptions wo = faulted_scan_world(share_topology);
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);
  RttMatrix m;
  HalfCircuitCache halves;
  ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
  ShardedScanOptions so;
  so.shards = shards;
  so.pair_seed = 7;
  so.half_cache = &halves;
  so.attempts_per_pair = 6;  // ride out the 3% loss plan
  ScanArtifacts a;
  a.report = scanner.scan(nodes, m, so);
  a.matrix_csv = m.to_csv();
  a.halves_csv = halves.to_csv();
  return a;
}

TEST(TopologyParityTest, ShardedScanMatchesLegacyClonesUnderFaults) {
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    const ScanArtifacts shared = run_sharded_scan(true, shards);
    const ScanArtifacts legacy = run_sharded_scan(false, shards);
    EXPECT_EQ(shared.matrix_csv, legacy.matrix_csv) << "W=" << shards;
    EXPECT_EQ(shared.halves_csv, legacy.halves_csv) << "W=" << shards;
    // The deterministic replay machinery must be untouched by the
    // construction path: same pair worklist, same per-pair reseeds.
    EXPECT_EQ(shared.report.reseeds, legacy.report.reseeds) << "W=" << shards;
    EXPECT_EQ(shared.report.measured, legacy.report.measured);
    EXPECT_EQ(shared.report.failed, legacy.report.failed);
    EXPECT_GT(shared.matrix_csv.size(), 0u);
  }
}

scenario::DaemonWorldOptions faulted_daemon_world(bool share_topology,
                                                 std::size_t shards) {
  scenario::DaemonWorldOptions o;
  o.relays = 10;
  o.testbed.seed = 52;
  o.testbed.differential_fraction = 0;
  o.ting.samples = 8;
  o.churn.seed = 53;
  o.churn.churn_rate = 0.1;
  o.churn.rejoin_rate = 0.5;
  o.fault_spec = "loss:*:0.02";
  o.shards = shards;
  o.share_topology = share_topology;
  return o;
}

TEST(TopologyParityTest, DaemonDeltaEpochMatchesLegacyClones) {
  // Two epochs: epoch 0 measures the full mesh, epoch 1 only the churn
  // delta — the persistent worlds carry half-warm state across the
  // boundary, which is exactly where a construction-path divergence would
  // surface.
  const auto run = [](bool share_topology, const std::string& out) {
    scenario::TestbedDaemonEnvironment env(faulted_daemon_world(
        share_topology, /*shards=*/4));
    DaemonOptions d;
    d.epochs = 2;
    d.out = out;
    d.seed = 5;
    d.config_tag = "topology-parity";
    ScanDaemon daemon(env, d);
    return daemon.run();
  };
  const std::string shared_out =
      ::testing::TempDir() + "/parity_shared.tingmx";
  const std::string legacy_out =
      ::testing::TempDir() + "/parity_legacy.tingmx";
  const DaemonReport shared = run(true, shared_out);
  const DaemonReport legacy = run(false, legacy_out);

  ASSERT_EQ(shared.epochs.size(), 2u);
  ASSERT_EQ(legacy.epochs.size(), 2u);
  for (std::size_t e = 0; e < 2; ++e) {
    EXPECT_EQ(shared.epochs[e].scan.pairs_total,
              legacy.epochs[e].scan.pairs_total) << "epoch " << e;
    EXPECT_EQ(shared.epochs[e].scan.measured,
              legacy.epochs[e].scan.measured) << "epoch " << e;
    EXPECT_EQ(shared.epochs[e].scan.reseeds,
              legacy.epochs[e].scan.reseeds) << "epoch " << e;
  }
  // Epoch 1 really was a delta, not a rescan.
  EXPECT_LT(shared.epochs[1].scan.pairs_total,
            shared.epochs[0].scan.pairs_total);
  // The artifact both runs leave on disk is byte-identical.
  EXPECT_EQ(read_file(shared_out), read_file(legacy_out));
}

}  // namespace
}  // namespace ting::meas
