// Tests for the sharded scan engine: the merged RttMatrix must be
// bit-identical (as CSV bytes) across shard counts and against the
// non-sharded ParallelScanner driven in deterministic mode, and the merged
// ScanReport counters must add up. Kept small (8 nodes, few samples) so the
// whole binary stays in the smoke label and runs under TSan.
#include <gtest/gtest.h>

#include <algorithm>
#include <stdexcept>

#include "scenario/shard_world.h"
#include "ting/half_circuit_cache.h"
#include "ting/scheduler.h"
#include "ting/sharded_scan.h"

namespace ting::meas {
namespace {

scenario::ShardWorldOptions small_world(std::uint64_t seed) {
  scenario::ShardWorldOptions o;
  o.relays = 10;
  o.scan_nodes = 8;
  o.testbed.seed = seed;
  o.testbed.differential_fraction = 0;
  o.ting.samples = 10;
  return o;
}

ShardedScanOptions sharded(std::size_t shards, std::uint64_t pair_seed) {
  ShardedScanOptions so;
  so.shards = shards;
  so.pair_seed = pair_seed;
  return so;
}

TEST(ShardedScanTest, BitIdenticalAcrossShardCounts) {
  const scenario::ShardWorldOptions wo = small_world(41);
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);
  ASSERT_EQ(nodes.size(), 8u);

  std::string csv1, csv4;
  {
    RttMatrix m;
    ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
    const ScanReport r = scanner.scan(nodes, m, sharded(1, 7));
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.measured, 28u);
    csv1 = m.to_csv();
  }
  {
    RttMatrix m;
    ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
    const ScanReport r = scanner.scan(nodes, m, sharded(4, 7));
    EXPECT_EQ(r.failed, 0u);
    EXPECT_EQ(r.measured, 28u);
    // Four shards really do run at once.
    EXPECT_EQ(r.max_in_flight, 4u);
    EXPECT_EQ(r.max_per_relay_in_flight, 1u);
    csv4 = m.to_csv();
  }
  EXPECT_EQ(csv1, csv4);
}

TEST(ShardedScanTest, MatchesNonShardedDeterministicScanner) {
  const scenario::ShardWorldOptions wo = small_world(41);
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);

  // The non-sharded path: one world, one ParallelScanner, deterministic
  // per-pair reseeding wired up by hand.
  scenario::Testbed tb = scenario::live_tor(wo.relays, wo.testbed);
  TingMeasurer measurer(tb.ting(), wo.ting);
  RttMatrix plain;
  ParallelScanner scanner({&measurer}, plain);
  ParallelScanOptions po;
  po.pair_seed = 7;
  po.reseed_world = [&tb](std::uint64_t s) { tb.reseed_stochastics(s); };
  const ScanReport r = scanner.scan(nodes, po);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.measured, 28u);

  RttMatrix merged;
  ShardedScanner sharded_scanner(scenario::make_testbed_shard_factory(wo));
  const ScanReport sr = sharded_scanner.scan(nodes, merged, sharded(3, 7));
  EXPECT_EQ(sr.failed, 0u);

  EXPECT_EQ(plain.to_csv(), merged.to_csv());
}

TEST(ShardedScanTest, MergedReportCountersAddUp) {
  const scenario::ShardWorldOptions wo = small_world(43);
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);

  RttMatrix m;
  ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
  std::size_t progress_calls = 0;
  std::size_t last_done = 0;
  const ScanReport r = scanner.scan(
      nodes, m, sharded(3, 11),
      [&](std::size_t done, std::size_t total, const PairResult&) {
        ++progress_calls;
        EXPECT_LE(done, total);
        last_done = std::max(last_done, done);
      });

  EXPECT_EQ(r.pairs_total, 28u);
  EXPECT_EQ(r.measured + r.from_cache + r.failed, 28u);
  EXPECT_EQ(r.failed,
            r.failed_transient + r.failed_permanent + r.failed_churned);
  EXPECT_EQ(progress_calls, 28u);
  EXPECT_EQ(last_done, 28u);
  EXPECT_EQ(m.size(), r.measured);
  ASSERT_FALSE(r.retry_histogram.empty());
  std::size_t hist_sum = 0;
  for (const std::size_t h : r.retry_histogram) hist_sum += h;
  EXPECT_EQ(hist_sum, r.measured + r.failed);
  EXPECT_GT(r.virtual_time.sec(), 0.0);
}

TEST(ShardedScanTest, BitIdenticalAcrossShardCountsWithOptimizations) {
  // Half-circuit memoization + adaptive early-stop must not perturb the
  // deterministic guarantee: with per-half world reseeds, a memoized R_Cx
  // equals the value a fresh probe would measure, so the merged matrix (and
  // the merged half-circuit cache) stay bit-identical for any W.
  scenario::ShardWorldOptions wo = small_world(47);
  wo.ting.adaptive_samples = true;
  wo.ting.samples = 40;
  // Aggressive stop rule so the 40-sample budget early-stops (the
  // conservative defaults only bite near the full 200 budget).
  wo.ting.min_samples = 10;
  wo.ting.plateau_samples = 10;
  wo.ting.epsilon_ms = 0.05;
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);

  std::string csv1, csv3, halves1, halves3;
  std::size_t built1 = 0, built3 = 0;
  {
    RttMatrix m;
    HalfCircuitCache halves;
    ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
    ShardedScanOptions so = sharded(1, 7);
    so.half_cache = &halves;
    const ScanReport r = scanner.scan(nodes, m, so);
    EXPECT_EQ(r.failed, 0u);
    EXPECT_GT(r.half_cache_hits, 0u);
    EXPECT_GT(r.samples_saved, 0u);
    // With one shard every relay's half is memoized after its first pair:
    // 8 half measurements + 28 C_xy builds, not 3 * 28.
    EXPECT_EQ(r.circuits_built, 28u + 8u);
    csv1 = m.to_csv();
    halves1 = halves.to_csv();
    built1 = r.circuits_built;
  }
  {
    RttMatrix m;
    HalfCircuitCache halves;
    ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
    ShardedScanOptions so = sharded(3, 7);
    so.half_cache = &halves;
    const ScanReport r = scanner.scan(nodes, m, so);
    EXPECT_EQ(r.failed, 0u);
    csv3 = m.to_csv();
    halves3 = halves.to_csv();
    built3 = r.circuits_built;
  }
  EXPECT_EQ(csv1, csv3);
  EXPECT_EQ(halves1, halves3);
  // Shards each warm a private cache copy, so more shards build more half
  // circuits — but deterministic values make the merged artifacts agree.
  EXPECT_GE(built3, built1);
}

TEST(ShardedScanTest, MergedCountersIncludeOptimizationStats) {
  scenario::ShardWorldOptions wo = small_world(48);
  wo.ting.adaptive_samples = true;
  wo.ting.samples = 40;
  wo.ting.min_samples = 10;
  wo.ting.plateau_samples = 10;
  wo.ting.epsilon_ms = 0.05;
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);

  RttMatrix m;
  HalfCircuitCache halves;
  ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
  ShardedScanOptions so = sharded(2, 9);
  so.half_cache = &halves;
  const ScanReport r = scanner.scan(nodes, m, so);
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(r.measured, 28u);
  // Every measured pair builds at least C_xy; memoization keeps the total
  // well under the cold 3-per-pair.
  EXPECT_GE(r.circuits_built, 28u);
  EXPECT_LT(r.circuits_built, 3u * 28u);
  EXPECT_GT(r.half_cache_hits, 0u);
  EXPECT_GT(r.samples_saved, 0u);
  // The merged cache holds one entry per (apparatus, relay); shard worlds
  // are clones sharing one w fingerprint, so that is one entry per relay.
  EXPECT_EQ(halves.size(), nodes.size());
}

TEST(ShardedScanTest, PairReseedIsCommutative) {
  const scenario::ShardWorldOptions wo = small_world(41);
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);
  EXPECT_EQ(pair_reseed(9, nodes[0], nodes[1]),
            pair_reseed(9, nodes[1], nodes[0]));
  EXPECT_NE(pair_reseed(9, nodes[0], nodes[1]),
            pair_reseed(9, nodes[0], nodes[2]));
  EXPECT_NE(pair_reseed(9, nodes[0], nodes[1]),
            pair_reseed(10, nodes[0], nodes[1]));
}

TEST(ShardedScanTest, ScanPairsSubsetMatchesFullScanEntries) {
  // The daemon feeds explicit worklists through scan_pairs(); a subset
  // scan must reproduce exactly the full scan's per-pair estimates (each
  // estimate is a pure function of the pair, never of the worklist).
  const scenario::ShardWorldOptions wo = small_world(41);
  const std::vector<dir::Fingerprint> nodes = scenario::shard_scan_nodes(wo);

  RttMatrix full;
  {
    ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
    scanner.scan(nodes, full, sharded(2, 7));
  }

  const ParallelScanner::PairList subset = {{0, 1}, {2, 5}, {6, 7}, {3, 4}};
  RttMatrix m;
  ShardedScanner scanner(scenario::make_testbed_shard_factory(wo));
  const ScanReport r = scanner.scan_pairs(nodes, subset, m, sharded(2, 7));
  EXPECT_EQ(r.pairs_total, subset.size());
  EXPECT_EQ(r.measured, subset.size());
  EXPECT_EQ(r.failed, 0u);
  EXPECT_EQ(m.size(), subset.size());
  for (const auto& [i, j] : subset) {
    ASSERT_TRUE(m.rtt(nodes[i], nodes[j]).has_value());
    EXPECT_EQ(*m.rtt(nodes[i], nodes[j]), *full.rtt(nodes[i], nodes[j]));
  }
}

TEST(ShardedScanTest, ShardExceptionIsRethrownAfterJoin) {
  ShardedScanner scanner([](std::size_t shard) -> std::unique_ptr<ShardWorld> {
    if (shard == 1) throw std::runtime_error("world build failed");
    return std::make_unique<scenario::TestbedShardWorld>(small_world(41));
  });
  const std::vector<dir::Fingerprint> nodes =
      scenario::shard_scan_nodes(small_world(41));
  RttMatrix m;
  EXPECT_THROW(scanner.scan(nodes, m, sharded(2, 7)), std::runtime_error);
}

}  // namespace
}  // namespace ting::meas
