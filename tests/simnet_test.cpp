// Tests for the discrete-event simulator: event-loop ordering and
// cancellation, latency-model structure (symmetry, determinism, protocol
// bias, TIV existence), and transport semantics (handshake cost, FIFO
// delivery, close propagation, ping).
#include <gtest/gtest.h>

#include <algorithm>
#include <optional>
#include <string>
#include <vector>

#include "simnet/event_loop.h"
#include "simnet/latency_model.h"
#include "simnet/network.h"

namespace ting::simnet {
namespace {

// -------------------------------------------------------------- EventLoop

TEST(EventLoopTest, RunsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(Duration::millis(30), [&] { order.push_back(3); });
  loop.schedule(Duration::millis(10), [&] { order.push_back(1); });
  loop.schedule(Duration::millis(20), [&] { order.push_back(2); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().ms(), 30.0);
}

TEST(EventLoopTest, EqualTimestampsFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    loop.schedule(Duration::millis(5), [&order, i] { order.push_back(i); });
  loop.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  std::vector<std::string> trace;
  loop.schedule(Duration::millis(1), [&] {
    trace.push_back("outer");
    loop.schedule(Duration::millis(1), [&] { trace.push_back("inner"); });
  });
  loop.run();
  EXPECT_EQ(trace, (std::vector<std::string>{"outer", "inner"}));
  EXPECT_EQ(loop.now().ms(), 2.0);
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  bool fired = false;
  const EventId id = loop.schedule(Duration::millis(1), [&] { fired = true; });
  loop.cancel(id);
  loop.run();
  EXPECT_FALSE(fired);
  EXPECT_EQ(loop.pending(), 0u);
}

TEST(EventLoopTest, CancelAfterFireIsNoop) {
  EventLoop loop;
  const EventId id = loop.schedule(Duration::millis(1), [] {});
  loop.run();
  loop.cancel(id);  // must not crash or corrupt
  EXPECT_FALSE(loop.run_one());
}

TEST(EventLoopTest, RunUntilAdvancesClockToDeadline) {
  EventLoop loop;
  int count = 0;
  loop.schedule(Duration::millis(5), [&] { ++count; });
  loop.schedule(Duration::millis(50), [&] { ++count; });
  loop.run_until(TimePoint{} + Duration::millis(20));
  EXPECT_EQ(count, 1);
  EXPECT_EQ(loop.now().ms(), 20.0);
  loop.run();
  EXPECT_EQ(count, 2);
}

TEST(EventLoopTest, SchedulingIntoThePastThrows) {
  EventLoop loop;
  loop.schedule(Duration::millis(10), [] {});
  loop.run();
  EXPECT_THROW(loop.schedule_at(TimePoint{} + Duration::millis(5), [] {}),
               CheckError);
}

TEST(EventLoopTest, WaitForPredicateSucceeds) {
  EventLoop loop;
  bool flag = false;
  loop.schedule(Duration::millis(10), [&] { flag = true; });
  EXPECT_TRUE(loop.run_while_waiting_for([&] { return flag; },
                                         Duration::seconds(1)));
}

TEST(EventLoopTest, WaitForPredicateTimesOut) {
  EventLoop loop;
  bool flag = false;
  loop.schedule(Duration::seconds(10), [&] { flag = true; });
  EXPECT_FALSE(loop.run_while_waiting_for([&] { return flag; },
                                          Duration::millis(100)));
  EXPECT_EQ(loop.now().ms(), 100.0);
}

TEST(EventLoopTest, WaitForPredicateDrainedQueue) {
  EventLoop loop;
  EXPECT_FALSE(loop.run_while_waiting_for([] { return false; },
                                          Duration::seconds(1)));
}

TEST(EventLoopTest, NextEventTimePeeksWithoutAdvancing) {
  EventLoop loop;
  EXPECT_FALSE(loop.next_event_time().has_value());
  const EventId a = loop.schedule(Duration::millis(5), [] {});
  loop.schedule(Duration::millis(9), [] {});
  auto t = loop.next_event_time();
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->ms(), 5.0);
  EXPECT_EQ(loop.now().ms(), 0.0);  // peeking never advances the clock
  loop.cancel(a);
  t = loop.next_event_time();  // the cancelled front is pruned, not returned
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->ms(), 9.0);
  EXPECT_TRUE(loop.run_one());
  EXPECT_FALSE(loop.next_event_time().has_value());
}

TEST(EventLoopTest, CancelTombstonesStayBounded) {
  EventLoop loop;
  // Schedule/cancel churn (the parallel scanner's retry timers): tombstones
  // must be compacted away, not accumulate one per cancel.
  std::size_t max_tombstones = 0;
  for (int i = 0; i < 100000; ++i) {
    const EventId id = loop.schedule(Duration::seconds(3600), [] {});
    loop.cancel(id);
    max_tombstones = std::max(max_tombstones, loop.cancelled_tombstones());
  }
  EXPECT_LE(max_tombstones, 4096u);
  EXPECT_EQ(loop.pending(), 0u);
  EXPECT_FALSE(loop.run_one());
  EXPECT_EQ(loop.cancelled_tombstones(), 0u);
}

TEST(EventLoopTest, CompactionPreservesLiveEvents) {
  EventLoop loop;
  int fired = 0;
  std::vector<EventId> ids;
  ids.reserve(1000);
  for (int i = 0; i < 1000; ++i)
    ids.push_back(loop.schedule(Duration::millis(1 + i), [&] { ++fired; }));
  for (std::size_t i = 0; i < ids.size(); i += 2) loop.cancel(ids[i]);
  EXPECT_EQ(loop.pending(), 500u);
  loop.run();
  EXPECT_EQ(fired, 500);
}

// ----------------------------------------------------------- LatencyModel

LatencyConfig zero_jitter_config() {
  LatencyConfig c;
  c.jitter_mean_ms = 1e-9;
  c.jitter_spike_prob = 0;
  return c;
}

TEST(LatencyModelTest, SymmetricAndDeterministic) {
  LatencyModel m;
  const HostId a = m.add_host({40.71, -74.01});
  const HostId b = m.add_host({51.51, -0.13});
  EXPECT_EQ(m.base_rtt(a, b), m.base_rtt(b, a));
  EXPECT_EQ(m.base_rtt(a, b), m.base_rtt(a, b));
}

TEST(LatencyModelTest, RespectsSpeedOfLightBound) {
  LatencyModel m;
  const HostId a = m.add_host({40.71, -74.01});
  const HostId b = m.add_host({35.68, 139.69});
  const double min_ms = geo::min_rtt_ms_for_distance(
      geo::great_circle_km(m.location(a), m.location(b)));
  EXPECT_GE(m.base_rtt(a, b).ms(), min_ms);
  EXPECT_LE(m.base_rtt(a, b).ms(), min_ms * m.config().inflation_max + 1e-6);
}

TEST(LatencyModelTest, IntraHostIsLoopback) {
  LatencyModel m;
  const HostId a = m.add_host({0, 0});
  EXPECT_DOUBLE_EQ(m.base_rtt(a, a).ms(), m.config().intra_host_rtt_ms);
}

TEST(LatencyModelTest, SeedChangesInflation) {
  LatencyConfig c1, c2;
  c2.seed = c1.seed + 1;
  LatencyModel m1(c1), m2(c2);
  const geo::GeoPoint p{40.71, -74.01}, q{51.51, -0.13};
  m1.add_host(p);
  m1.add_host(q);
  m2.add_host(p);
  m2.add_host(q);
  EXPECT_NE(m1.base_rtt(0, 1).ns(), m2.base_rtt(0, 1).ns());
}

TEST(LatencyModelTest, ProtocolBiasShiftsRtt) {
  LatencyModel m;
  NetworkPolicy weird;
  weird.icmp_extra_ms = 25.0;
  weird.tor_extra_ms = -5.0;
  const HostId a = m.add_host({40.71, -74.01}, weird);
  const HostId b = m.add_host({51.51, -0.13});
  const double tcp = m.rtt(a, b, Protocol::kTcp).ms();
  EXPECT_NEAR(m.rtt(a, b, Protocol::kIcmp).ms(), tcp + 25.0, 1e-6);
  EXPECT_NEAR(m.rtt(a, b, Protocol::kTor).ms(), tcp - 5.0, 1e-6);
}

TEST(LatencyModelTest, NegativeBiasNeverProducesNegativeRtt) {
  LatencyModel m;
  NetworkPolicy fastpath;
  fastpath.tor_extra_ms = -10000.0;
  const HostId a = m.add_host({40.0, -74.0}, fastpath);
  const HostId b = m.add_host({40.1, -74.1});
  EXPECT_GT(m.rtt(a, b, Protocol::kTor).ns(), 0);
}

TEST(LatencyModelTest, SamplesNeverBelowHalfRtt) {
  LatencyModel m;
  const HostId a = m.add_host({40.71, -74.01});
  const HostId b = m.add_host({51.51, -0.13});
  Rng rng(1);
  const double floor_ms = m.rtt(a, b, Protocol::kTcp).ms() / 2;
  for (int i = 0; i < 1000; ++i) {
    EXPECT_GE(m.sample_one_way(a, b, Protocol::kTcp, rng).ms(),
              floor_ms - 1e-9);
  }
}

TEST(LatencyModelTest, MinOfSamplesConvergesToHalfRtt) {
  LatencyModel m;
  const HostId a = m.add_host({40.71, -74.01});
  const HostId b = m.add_host({51.51, -0.13});
  Rng rng(2);
  double best = 1e18;
  for (int i = 0; i < 2000; ++i)
    best = std::min(best, m.sample_one_way(a, b, Protocol::kTcp, rng).ms());
  EXPECT_NEAR(best, m.rtt(a, b, Protocol::kTcp).ms() / 2, 0.05);
}

TEST(LatencyModelTest, TriangleInequalityViolationsExist) {
  // With independent per-pair inflation, some pair (s,d) should have a relay
  // r with rtt(s,r)+rtt(r,d) < rtt(s,d) — the paper's §5.2.1 phenomenon.
  LatencyModel m;
  Rng rng(3);
  std::vector<HostId> hosts;
  for (int i = 0; i < 25; ++i)
    hosts.push_back(m.add_host({rng.uniform(25.0, 60.0),
                                rng.uniform(-120.0, 30.0)}));
  int tivs = 0;
  for (HostId s : hosts)
    for (HostId d : hosts) {
      if (s >= d) continue;
      for (HostId r : hosts) {
        if (r == s || r == d) continue;
        if (m.base_rtt(s, r) + m.base_rtt(r, d) < m.base_rtt(s, d)) {
          ++tivs;
          break;
        }
      }
    }
  EXPECT_GT(tivs, 10);
}

// ---------------------------------------------------------------- Network

struct NetFixture {
  EventLoop loop;
  Network net;
  NetFixture() : net(loop, zero_jitter_config(), 5) {}
};

TEST(NetworkTest, HostRegistrationAndLookup) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  EXPECT_EQ(f.net.ip_of(a), IpAddr(10, 0, 0, 1));
  EXPECT_EQ(f.net.host_of(IpAddr(10, 0, 0, 1)), a);
  EXPECT_FALSE(f.net.host_of(IpAddr(10, 0, 0, 2)).has_value());
  EXPECT_THROW(f.net.add_host(IpAddr(10, 0, 0, 1), {0, 0}), CheckError);
}

TEST(NetworkTest, ConnectCostsOneRtt) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.71, -74.01});
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {51.51, -0.13});
  f.net.listen(b, 80);
  std::optional<double> connected_at;
  f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, Protocol::kTcp,
                [&](ConnPtr) { connected_at = f.loop.now().ms(); });
  f.loop.run();
  ASSERT_TRUE(connected_at.has_value());
  const double rtt = f.net.latency().rtt(a, b, Protocol::kTcp).ms();
  EXPECT_NEAR(*connected_at, rtt, rtt * 0.02 + 0.1);
}

TEST(NetworkTest, ConnectToClosedPortFails) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  f.net.add_host(IpAddr(10, 0, 0, 2), {41.0, -75.0});
  bool ok = false, failed = false;
  f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 9999}, Protocol::kTcp,
                [&](ConnPtr) { ok = true; },
                [&](const std::string&) { failed = true; });
  f.loop.run();
  EXPECT_FALSE(ok);
  EXPECT_TRUE(failed);
}

TEST(NetworkTest, EchoRoundTrip) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.71, -74.01});
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {51.51, -0.13});
  Listener* lis = f.net.listen(b, 7);
  lis->set_on_accept([](ConnPtr c) {
    c->set_on_message([c](Bytes msg) { c->send(std::move(msg)); });
  });
  std::string got;
  f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 7}, Protocol::kTcp,
                [&](ConnPtr c) {
                  c->set_on_message([&got](Bytes msg) {
                    got.assign(msg.begin(), msg.end());
                  });
                  c->send(Bytes{'h', 'i'});
                });
  f.loop.run();
  EXPECT_EQ(got, "hi");
}

TEST(NetworkTest, FifoDeliveryPerConnection) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {40.1, -74.1});
  Listener* lis = f.net.listen(b, 1000);
  std::vector<std::uint8_t> received;
  lis->set_on_accept([&](ConnPtr c) {
    c->set_on_message([&received, c](Bytes msg) { received.push_back(msg[0]); });
  });
  f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 1000}, Protocol::kTcp,
                [&](ConnPtr c) {
                  for (std::uint8_t i = 0; i < 50; ++i) c->send(Bytes{i});
                });
  f.loop.run();
  ASSERT_EQ(received.size(), 50u);
  for (std::uint8_t i = 0; i < 50; ++i) EXPECT_EQ(received[i], i);
}

TEST(NetworkTest, EphemeralPortsSkipBoundPortsAtWrap) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {40.1, -74.1});
  f.net.listen(b, 80);
  // Park a listener on the very last port so the wrap has to skip it.
  f.net.listen(a, 65535);
  f.net.set_next_ephemeral_port(a, 65534);

  std::vector<ConnPtr> conns;
  const auto dial = [&] {
    f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, Protocol::kTcp,
                  [&](ConnPtr c) { conns.push_back(std::move(c)); });
    f.loop.run();
  };

  dial();
  ASSERT_EQ(conns.size(), 1u);
  EXPECT_EQ(conns[0]->local().port, 65534);
  // The counter now wraps: 65535 is a listener, so the next connection must
  // land back at the bottom of the ephemeral range.
  dial();
  ASSERT_EQ(conns.size(), 2u);
  EXPECT_EQ(conns[1]->local().port, 40000);
  // Re-park just below the wrap: 65534 is held by a live connection now, so
  // allocation must skip it (and the listener, and the connection on 40000).
  f.net.set_next_ephemeral_port(a, 65534);
  dial();
  ASSERT_EQ(conns.size(), 3u);
  EXPECT_EQ(conns[2]->local().port, 40001);
  // No two live connections share a local endpoint.
  for (std::size_t i = 0; i < conns.size(); ++i)
    for (std::size_t j = i + 1; j < conns.size(); ++j)
      EXPECT_FALSE(conns[i]->local() == conns[j]->local());
}

TEST(NetworkTest, ClosedConnectionsReleaseTheirEphemeralPorts) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {40.1, -74.1});
  f.net.listen(b, 80);

  f.net.set_next_ephemeral_port(a, 65534);
  ConnPtr first;
  f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, Protocol::kTcp,
                [&](ConnPtr c) { first = std::move(c); });
  f.loop.run();
  ASSERT_TRUE(first != nullptr);
  EXPECT_EQ(first->local().port, 65534);
  first->close();
  first.reset();
  f.loop.run();
  EXPECT_EQ(f.net.live_connections(), 0u);

  // The port is free again: re-parking the counter hands out 65534 anew.
  f.net.set_next_ephemeral_port(a, 65534);
  ConnPtr second;
  f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, Protocol::kTcp,
                [&](ConnPtr c) { second = std::move(c); });
  f.loop.run();
  ASSERT_TRUE(second != nullptr);
  EXPECT_EQ(second->local().port, 65534);
}

TEST(NetworkTest, CloseReachesPeer) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {40.5, -74.5});
  Listener* lis = f.net.listen(b, 22);
  bool server_closed = false;
  lis->set_on_accept([&](ConnPtr c) {
    c->set_on_close([&server_closed] { server_closed = true; });
  });
  f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 22}, Protocol::kTcp,
                [](ConnPtr c) { c->close(); });
  f.loop.run();
  EXPECT_TRUE(server_closed);
}

TEST(NetworkTest, SendAfterCloseIsDropped) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {40.5, -74.5});
  Listener* lis = f.net.listen(b, 23);
  int messages = 0;
  lis->set_on_accept([&](ConnPtr c) {
    c->set_on_message([&messages](Bytes) { ++messages; });
  });
  f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 23}, Protocol::kTcp,
                [](ConnPtr c) {
                  c->send(Bytes{1});
                  c->close();
                  c->send(Bytes{2});  // dropped
                });
  f.loop.run();
  EXPECT_EQ(messages, 1);
}

TEST(NetworkTest, PingMeasuresIcmpRtt) {
  NetFixture f;
  NetworkPolicy icmp_slow;
  icmp_slow.icmp_extra_ms = 30.0;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.71, -74.01});
  const HostId b =
      f.net.add_host(IpAddr(10, 0, 0, 2), {51.51, -0.13}, icmp_slow);
  std::optional<Duration> measured;
  f.net.ping(a, IpAddr(10, 0, 0, 2), [&](std::optional<Duration> rtt) {
    measured = rtt;
  });
  f.loop.run();
  ASSERT_TRUE(measured.has_value());
  const double expect_ms = f.net.latency().rtt(a, b, Protocol::kIcmp).ms();
  EXPECT_NEAR(measured->ms(), expect_ms, 0.2);
  // And the ICMP bias is visible relative to TCP.
  EXPECT_GT(measured->ms(),
            f.net.latency().rtt(a, b, Protocol::kTcp).ms() + 25.0);
}

TEST(NetworkTest, PingUnknownHostTimesOut) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  std::optional<std::optional<Duration>> result;
  f.net.ping(a, IpAddr(9, 9, 9, 9),
             [&](std::optional<Duration> rtt) { result = rtt; },
             Duration::millis(200));
  f.loop.run();
  ASSERT_TRUE(result.has_value());
  EXPECT_FALSE(result->has_value());
  EXPECT_EQ(f.loop.now().ms(), 200.0);
}

TEST(NetworkTest, EphemeralPortsDistinct) {
  NetFixture f;
  const HostId a = f.net.add_host(IpAddr(10, 0, 0, 1), {40.0, -74.0});
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {40.5, -74.5});
  f.net.listen(b, 80);
  std::vector<std::uint16_t> ports;
  for (int i = 0; i < 3; ++i)
    f.net.connect(a, Endpoint{IpAddr(10, 0, 0, 2), 80}, Protocol::kTcp,
                  [&](ConnPtr c) { ports.push_back(c->local().port); });
  f.loop.run();
  ASSERT_EQ(ports.size(), 3u);
  EXPECT_NE(ports[0], ports[1]);
  EXPECT_NE(ports[1], ports[2]);
}

TEST(NetworkTest, DuplicateListenThrows) {
  NetFixture f;
  const HostId b = f.net.add_host(IpAddr(10, 0, 0, 2), {40.0, -74.0});
  f.net.listen(b, 443);
  EXPECT_THROW(f.net.listen(b, 443), CheckError);
}

}  // namespace
}  // namespace ting::simnet

namespace ting::simnet {
namespace {

TEST(LatencyModelTest, CrossGroupInflationAppliesOnlyAcrossGroups) {
  LatencyConfig with, without;
  with.cross_group_extra_min = 0.2;
  with.cross_group_extra_max = 0.6;
  LatencyModel m_with(with), m_without(without);
  const geo::GeoPoint us{40.71, -74.01}, us2{34.05, -118.24}, de{52.52, 13.40};
  // Groups: 1 = US, 2 = DE.
  for (auto* m : {&m_with, &m_without}) {
    m->add_host(us, {}, 1);
    m->add_host(us2, {}, 1);
    m->add_host(de, {}, 2);
  }
  // Same-group pair: identical with or without the feature.
  EXPECT_EQ(m_with.base_rtt(0, 1), m_without.base_rtt(0, 1));
  // Cross-group pair: inflated by 20-60%.
  const double plain = m_without.base_rtt(0, 2).ms();
  const double inflated = m_with.base_rtt(0, 2).ms();
  EXPECT_GE(inflated, plain * 1.2 - 1e-6);
  EXPECT_LE(inflated, plain * 1.6 + 1e-6);
  // Deterministic.
  EXPECT_EQ(m_with.base_rtt(0, 2), m_with.base_rtt(2, 0));
  EXPECT_EQ(m_with.group_tag(0), 1u);
  EXPECT_EQ(m_with.group_tag(2), 2u);
}

}  // namespace
}  // namespace ting::simnet
