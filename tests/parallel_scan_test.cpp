// Tests for ParallelScanner: estimate parity with the sequential engine,
// virtual-time speedup from keeping K pairs in flight, the per-relay
// admission cap, retry-with-backoff on injected failures, and cache reuse.
#include <gtest/gtest.h>

#include <memory>

#include "scenario/testbed.h"
#include "ting/half_circuit_cache.h"
#include "ting/scheduler.h"

namespace ting::meas {
namespace {

scenario::TestbedOptions calm(std::uint64_t seed) {
  scenario::TestbedOptions o;
  o.seed = seed;
  o.differential_fraction = 0;
  o.latency.jitter_mean_ms = 0.05;
  o.latency.jitter_spike_prob = 0;
  return o;
}

/// Calm world with near-deterministic relay queueing, so min-of-N converges
/// well inside 1 ms and cross-engine estimate parity is testable tightly.
scenario::TestbedOptions stable(std::uint64_t seed) {
  scenario::TestbedOptions o = calm(seed);
  o.forward_queue_scale = 0.05;
  return o;
}

/// A pool of K measurers (one per measurement host) over the testbed.
struct Pool {
  std::vector<std::unique_ptr<TingMeasurer>> owned;
  std::vector<TingMeasurer*> measurers;

  Pool(scenario::Testbed& tb, std::size_t k, const TingConfig& cfg) {
    for (meas::MeasurementHost* host : tb.measurement_pool(k)) {
      owned.push_back(std::make_unique<TingMeasurer>(*host, cfg));
      measurers.push_back(owned.back().get());
    }
  }
};

TEST(ParallelScanTest, MatchesSequentialPairForPair) {
  scenario::Testbed tb = scenario::planetlab31(stable(901));
  TingConfig cfg;
  cfg.samples = 30;
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < 10; ++i) nodes.push_back(tb.fp(i));

  TingMeasurer sequential_measurer(tb.ting(), cfg);
  RttMatrix seq_cache;
  AllPairsScanner sequential(sequential_measurer, seq_cache);
  const ScanReport seq = sequential.scan(nodes);
  ASSERT_EQ(seq.measured, 45u);

  Pool pool(tb, 4, cfg);
  RttMatrix par_cache;
  ParallelScanner parallel(pool.measurers, par_cache);
  std::size_t progress_calls = 0;
  const ScanReport par = parallel.scan(
      nodes, {},
      [&](std::size_t done, std::size_t total, const PairResult& r) {
        ++progress_calls;
        EXPECT_LE(done, total);
        EXPECT_TRUE(r.ok);
      });

  EXPECT_EQ(par.pairs_total, 45u);
  EXPECT_EQ(par.measured, 45u);
  EXPECT_EQ(par.failed, 0u);
  EXPECT_EQ(progress_calls, 45u);
  EXPECT_GT(par.max_in_flight, 1u);
  EXPECT_GT(par.time_sampling.sec(), 0.0);

  // Pair-for-pair parity with the sequential engine (same world, same
  // relays; only sampling jitter differs).
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j) {
      const auto a = seq_cache.rtt(nodes[i], nodes[j]);
      const auto b = par_cache.rtt(nodes[i], nodes[j]);
      ASSERT_TRUE(a.has_value());
      ASSERT_TRUE(b.has_value());
      EXPECT_NEAR(*a, *b, 1.0) << "pair " << i << "," << j;
    }
}

TEST(ParallelScanTest, ThirtyNodeScanAtK8IsAtLeastFourTimesFaster) {
  scenario::Testbed tb = scenario::planetlab31(stable(902));
  TingConfig cfg;
  cfg.samples = 20;
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < 30; ++i) nodes.push_back(tb.fp(i));

  TingMeasurer sequential_measurer(tb.ting(), cfg);
  RttMatrix seq_cache;
  AllPairsScanner sequential(sequential_measurer, seq_cache);
  const ScanReport seq = sequential.scan(nodes);
  ASSERT_EQ(seq.measured, 435u);

  Pool pool(tb, 8, cfg);
  RttMatrix par_cache;
  ParallelScanner parallel(pool.measurers, par_cache);
  const ScanReport par = parallel.scan(nodes);

  ASSERT_EQ(par.measured, 435u);
  EXPECT_EQ(par.failed, 0u);
  EXPECT_EQ(par.max_in_flight, 8u);
  EXPECT_EQ(par.max_per_relay_in_flight, 1u);
  // The acceptance bar: >= 4x virtual-time speedup at K=8 ...
  EXPECT_LE(par.virtual_time.sec() * 4.0, seq.virtual_time.sec())
      << "parallel " << par.virtual_time.sec() << "s vs sequential "
      << seq.virtual_time.sec() << "s";
  // ... with every pair's estimate within 1 ms of the sequential scan's.
  for (std::size_t i = 0; i < nodes.size(); ++i)
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      EXPECT_NEAR(*seq_cache.rtt(nodes[i], nodes[j]),
                  *par_cache.rtt(nodes[i], nodes[j]), 1.0)
          << "pair " << i << "," << j;
}

TEST(ParallelScanTest, PerRelayCircuitCapIsNeverExceeded) {
  scenario::Testbed tb = scenario::planetlab31(calm(903));
  TingConfig cfg;
  cfg.samples = 15;
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < 8; ++i) nodes.push_back(tb.fp(i));

  Pool pool(tb, 6, cfg);
  {
    RttMatrix cache;
    ParallelScanner scanner(pool.measurers, cache);
    const ScanReport report = scanner.scan(nodes);
    EXPECT_EQ(report.measured, 28u);
    // cap 1 (default): a relay is never probed by two circuits at once,
    // and the engine still runs pairs concurrently (8 nodes admit 4).
    EXPECT_EQ(report.max_per_relay_in_flight, 1u);
    EXPECT_GT(report.max_in_flight, 1u);
    EXPECT_LE(report.max_in_flight, pool.measurers.size());
  }
  {
    RttMatrix cache;
    ParallelScanner scanner(pool.measurers, cache);
    ParallelScanOptions options;
    options.per_relay_cap = 2;
    options.max_age = Duration::seconds(0);  // force remeasurement
    const ScanReport report = scanner.scan(nodes, options);
    EXPECT_EQ(report.measured, 28u);
    EXPECT_LE(report.max_per_relay_in_flight, 2u);
  }
}

TEST(ParallelScanTest, InjectedFailuresAreRetriedWithBackoff) {
  scenario::Testbed tb = scenario::planetlab31(calm(904));
  TingConfig cfg;
  cfg.samples = 10;
  cfg.sample_timeout = Duration::seconds(2);
  cfg.build_timeout = Duration::seconds(20);
  cfg.max_build_attempts = 1;  // isolate the scan engine's retry logic
  std::vector<dir::Fingerprint> nodes{tb.fp(0), tb.fp(1), tb.fp(2), tb.fp(3)};

  // Crash relay 0 now; revive it before the engine's first backoff retry
  // fires. Every pair touching relay 0 fails its first attempt (deadline),
  // then succeeds on retry.
  tb.net().set_host_down(tb.host_of(tb.fp(0)));
  tb.loop().schedule(Duration::seconds(90), [&]() {
    tb.net().set_host_down(tb.host_of(tb.fp(0)), false);
  });

  Pool pool(tb, 3, cfg);
  RttMatrix cache;
  ParallelScanner scanner(pool.measurers, cache);
  ParallelScanOptions options;
  options.attempts_per_pair = 3;
  options.retry_backoff_base = Duration::seconds(60);
  const ScanReport report = scanner.scan(nodes, options);

  EXPECT_EQ(report.pairs_total, 6u);
  EXPECT_EQ(report.measured, 6u);
  EXPECT_EQ(report.failed, 0u);
  EXPECT_GE(report.retries, 3u);  // the three pairs touching relay 0
  ASSERT_EQ(report.retry_histogram.size(), 3u);
  EXPECT_EQ(report.retry_histogram[0], 3u);  // pairs untouched by the crash
  EXPECT_GE(report.retry_histogram[1] + report.retry_histogram[2], 3u);
  for (std::size_t i = 1; i < nodes.size(); ++i)
    EXPECT_TRUE(cache.contains(tb.fp(0), nodes[i]));
}

TEST(ParallelScanTest, PersistentFailuresSurfaceInFailedPairs) {
  scenario::Testbed tb = scenario::planetlab31(calm(905));
  TingConfig cfg;
  cfg.samples = 10;

  // A node absent from the consensus: every circuit through it fails.
  crypto::X25519Key ghost_key;
  ghost_key.fill(0xdd);
  const dir::Fingerprint ghost = dir::Fingerprint::of_identity(ghost_key);
  std::vector<dir::Fingerprint> nodes{tb.fp(0), tb.fp(1), ghost};

  Pool pool(tb, 2, cfg);
  RttMatrix cache;
  ParallelScanner scanner(pool.measurers, cache);
  ParallelScanOptions options;
  options.attempts_per_pair = 2;
  options.retry_backoff_base = Duration::seconds(5);
  const ScanReport report = scanner.scan(nodes, options);

  EXPECT_EQ(report.measured, 1u);  // (0, 1) works
  EXPECT_EQ(report.failed, 2u);
  ASSERT_EQ(report.failed_pairs.size(), 2u);
  for (const auto& f : report.failed_pairs) {
    EXPECT_TRUE(f.a == ghost || f.b == ghost);
    EXPECT_EQ(f.error_class, ErrorClass::kPermanent);
  }
  EXPECT_EQ(report.failed_permanent, 2u);
  // Permanent failures consume exactly one attempt: no retries were spent
  // on the ghost pairs.
  EXPECT_EQ(report.retries, 0u);
  EXPECT_TRUE(cache.contains(tb.fp(0), tb.fp(1)));
}

TEST(ParallelScanTest, ManySynchronousFailuresDoNotRecursePump) {
  // Regression: measure_async fails synchronously for relays missing from
  // the consensus. The dispatch callback used to resolve such failures
  // inline, re-entering pump() from inside pump()'s dispatch loop — one
  // stack frame per failing task. With a scan made almost entirely of
  // sync-failing pairs, that was deep recursion; resolution must instead
  // ride a deferred event.
  scenario::Testbed tb = scenario::planetlab31(calm(907));
  TingConfig cfg;
  cfg.samples = 5;

  std::vector<dir::Fingerprint> nodes{tb.fp(0)};
  for (std::uint8_t i = 0; i < 40; ++i) {
    crypto::X25519Key key;
    key.fill(static_cast<std::uint8_t>(0x30 + i));
    nodes.push_back(dir::Fingerprint::of_identity(key));
  }

  Pool pool(tb, 4, cfg);
  RttMatrix cache;
  ParallelScanner scanner(pool.measurers, cache);
  ParallelScanOptions options;
  options.attempts_per_pair = 1;
  const ScanReport report = scanner.scan(nodes, options);

  const std::size_t pairs = nodes.size() * (nodes.size() - 1) / 2;
  EXPECT_EQ(report.pairs_total, pairs);
  EXPECT_EQ(report.measured, 0u);  // every pair touches a ghost
  EXPECT_EQ(report.failed, pairs);
  EXPECT_EQ(report.failed_permanent, pairs);
  EXPECT_EQ(report.retries, 0u);
}

TEST(ParallelScanTest, OptimizedScanMatchesColdScanClosely) {
  // The acceptance regression: a scan with every measurement-plane
  // optimization on (half-circuit cache, adaptive early-stop, pipelined
  // builds) produces per-pair estimates within 1 ms of a fully cold scan,
  // while building far fewer circuits and taking fewer samples.
  TingConfig cold_cfg;
  cold_cfg.samples = 40;
  TingConfig opt_cfg = cold_cfg;
  opt_cfg.adaptive_samples = true;
  // Aggressive stop rule so a 40-sample budget can early-stop at all (the
  // conservative library defaults only bite near the full 200 budget).
  opt_cfg.min_samples = 10;
  opt_cfg.plateau_samples = 10;
  opt_cfg.epsilon_ms = 0.05;
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};

  scenario::Testbed cold_world = scenario::planetlab31(stable(911));
  std::vector<dir::Fingerprint> cold_nodes;
  for (std::size_t i : idx) cold_nodes.push_back(cold_world.fp(i));
  Pool cold_pool(cold_world, 4, cold_cfg);
  RttMatrix cold_cache;
  ParallelScanner cold_scanner(cold_pool.measurers, cold_cache);
  ParallelScanOptions cold_options;
  cold_options.pipeline_builds = false;
  const ScanReport cold = cold_scanner.scan(cold_nodes, cold_options);
  ASSERT_EQ(cold.measured, 45u);
  EXPECT_EQ(cold.circuits_built, 3u * 45u);
  EXPECT_EQ(cold.half_cache_hits, 0u);
  EXPECT_EQ(cold.samples_saved, 0u);

  scenario::Testbed opt_world = scenario::planetlab31(stable(911));
  std::vector<dir::Fingerprint> opt_nodes;
  for (std::size_t i : idx) opt_nodes.push_back(opt_world.fp(i));
  Pool opt_pool(opt_world, 4, opt_cfg);
  RttMatrix opt_cache;
  ParallelScanner opt_scanner(opt_pool.measurers, opt_cache);
  ParallelScanOptions opt_options;
  HalfCircuitCache halves;
  opt_options.half_cache = &halves;
  const ScanReport opt = opt_scanner.scan(opt_nodes, opt_options);
  ASSERT_EQ(opt.measured, 45u);

  // Each of K=4 hosts memoizes its own halves, so hits are plentiful even
  // though the first pair per (host, relay) still measures.
  EXPECT_GT(opt.half_cache_hits, 0u);
  EXPECT_LT(opt.circuits_built, cold.circuits_built);
  EXPECT_GT(opt.samples_saved, 0u);
  EXPECT_FALSE(halves.empty());

  for (std::size_t i = 0; i < cold_nodes.size(); ++i)
    for (std::size_t j = i + 1; j < cold_nodes.size(); ++j)
      EXPECT_NEAR(*cold_cache.rtt(cold_nodes[i], cold_nodes[j]),
                  *opt_cache.rtt(opt_nodes[i], opt_nodes[j]), 1.0)
          << "pair " << i << "," << j;
}

TEST(ParallelScanTest, PipelinedBuildsReduceSequentialScanTime) {
  // AllPairsScanner with pipelining prebuilds pair p+1's C_xy while pair p
  // samples, so the serial engine's virtual time drops by roughly one
  // build's worth of EXTENDCIRCUIT round trips per pair.
  TingConfig cfg;
  cfg.samples = 20;
  std::vector<std::size_t> idx{0, 1, 2, 3, 4, 5, 6, 7};

  const auto run = [&](bool pipeline) {
    scenario::Testbed tb = scenario::planetlab31(stable(912));
    std::vector<dir::Fingerprint> nodes;
    for (std::size_t i : idx) nodes.push_back(tb.fp(i));
    TingMeasurer m(tb.ting(), cfg);
    RttMatrix cache;
    AllPairsScanner scanner(m, cache);
    ScanOptions options;
    options.pipeline_builds = pipeline;
    const ScanReport r = scanner.scan(nodes, options);
    EXPECT_EQ(r.measured, 28u);
    EXPECT_EQ(r.failed, 0u);
    // Pipelining hides build latency but never skips builds.
    EXPECT_EQ(r.circuits_built, 3u * 28u);
    return r.virtual_time.sec();
  };

  const double plain = run(false);
  const double pipelined = run(true);
  EXPECT_LT(pipelined, plain)
      << "pipelined " << pipelined << "s vs plain " << plain << "s";
}

TEST(ParallelScanTest, FreshCacheEntriesAreSkipped) {
  scenario::Testbed tb = scenario::planetlab31(calm(906));
  TingConfig cfg;
  cfg.samples = 15;
  std::vector<dir::Fingerprint> nodes;
  for (std::size_t i = 0; i < 5; ++i) nodes.push_back(tb.fp(i));

  Pool pool(tb, 4, cfg);
  RttMatrix cache;
  ParallelScanner scanner(pool.measurers, cache);
  const ScanReport first = scanner.scan(nodes);
  EXPECT_EQ(first.measured, 10u);

  const ScanReport second = scanner.scan(nodes);
  EXPECT_EQ(second.measured, 0u);
  EXPECT_EQ(second.from_cache, 10u);
  EXPECT_EQ(second.max_in_flight, 0u);
}

}  // namespace
}  // namespace ting::meas
