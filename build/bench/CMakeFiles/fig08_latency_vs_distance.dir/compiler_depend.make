# Empty compiler generated dependencies file for fig08_latency_vs_distance.
# This may be replaced when dependencies are built.
