file(REMOVE_RECURSE
  "CMakeFiles/fig08_latency_vs_distance.dir/fig08_latency_vs_distance.cpp.o"
  "CMakeFiles/fig08_latency_vs_distance.dir/fig08_latency_vs_distance.cpp.o.d"
  "fig08_latency_vs_distance"
  "fig08_latency_vs_distance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_latency_vs_distance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
