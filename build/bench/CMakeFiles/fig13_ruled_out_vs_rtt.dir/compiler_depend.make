# Empty compiler generated dependencies file for fig13_ruled_out_vs_rtt.
# This may be replaced when dependencies are built.
