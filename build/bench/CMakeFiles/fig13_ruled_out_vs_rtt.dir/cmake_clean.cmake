file(REMOVE_RECURSE
  "CMakeFiles/fig13_ruled_out_vs_rtt.dir/fig13_ruled_out_vs_rtt.cpp.o"
  "CMakeFiles/fig13_ruled_out_vs_rtt.dir/fig13_ruled_out_vs_rtt.cpp.o.d"
  "fig13_ruled_out_vs_rtt"
  "fig13_ruled_out_vs_rtt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_ruled_out_vs_rtt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
