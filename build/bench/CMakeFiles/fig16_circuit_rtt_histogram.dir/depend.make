# Empty dependencies file for fig16_circuit_rtt_histogram.
# This may be replaced when dependencies are built.
