file(REMOVE_RECURSE
  "CMakeFiles/fig16_circuit_rtt_histogram.dir/fig16_circuit_rtt_histogram.cpp.o"
  "CMakeFiles/fig16_circuit_rtt_histogram.dir/fig16_circuit_rtt_histogram.cpp.o.d"
  "fig16_circuit_rtt_histogram"
  "fig16_circuit_rtt_histogram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_circuit_rtt_histogram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
