# Empty dependencies file for fig04_accuracy_by_regime.
# This may be replaced when dependencies are built.
