file(REMOVE_RECURSE
  "CMakeFiles/fig04_accuracy_by_regime.dir/fig04_accuracy_by_regime.cpp.o"
  "CMakeFiles/fig04_accuracy_by_regime.dir/fig04_accuracy_by_regime.cpp.o.d"
  "fig04_accuracy_by_regime"
  "fig04_accuracy_by_regime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig04_accuracy_by_regime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
