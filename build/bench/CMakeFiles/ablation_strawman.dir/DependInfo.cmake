
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/ablation_strawman.cpp" "bench/CMakeFiles/ablation_strawman.dir/ablation_strawman.cpp.o" "gcc" "bench/CMakeFiles/ablation_strawman.dir/ablation_strawman.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ting_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ting_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ting_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/ting_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dir/CMakeFiles/ting_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/ting_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/tor/CMakeFiles/ting_tor.dir/DependInfo.cmake"
  "/root/repo/build/src/echo/CMakeFiles/ting_echo.dir/DependInfo.cmake"
  "/root/repo/build/src/ctrl/CMakeFiles/ting_ctrl.dir/DependInfo.cmake"
  "/root/repo/build/src/ting/CMakeFiles/ting_core.dir/DependInfo.cmake"
  "/root/repo/build/src/scenario/CMakeFiles/ting_scenario.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/ting_analysis.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
