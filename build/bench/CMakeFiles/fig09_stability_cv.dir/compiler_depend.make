# Empty compiler generated dependencies file for fig09_stability_cv.
# This may be replaced when dependencies are built.
