file(REMOVE_RECURSE
  "CMakeFiles/fig09_stability_cv.dir/fig09_stability_cv.cpp.o"
  "CMakeFiles/fig09_stability_cv.dir/fig09_stability_cv.cpp.o.d"
  "fig09_stability_cv"
  "fig09_stability_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_stability_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
