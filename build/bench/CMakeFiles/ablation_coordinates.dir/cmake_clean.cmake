file(REMOVE_RECURSE
  "CMakeFiles/ablation_coordinates.dir/ablation_coordinates.cpp.o"
  "CMakeFiles/ablation_coordinates.dir/ablation_coordinates.cpp.o.d"
  "ablation_coordinates"
  "ablation_coordinates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_coordinates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
