# Empty compiler generated dependencies file for ablation_coordinates.
# This may be replaced when dependencies are built.
