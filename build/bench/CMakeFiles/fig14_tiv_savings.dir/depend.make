# Empty dependencies file for fig14_tiv_savings.
# This may be replaced when dependencies are built.
