file(REMOVE_RECURSE
  "CMakeFiles/fig14_tiv_savings.dir/fig14_tiv_savings.cpp.o"
  "CMakeFiles/fig14_tiv_savings.dir/fig14_tiv_savings.cpp.o.d"
  "fig14_tiv_savings"
  "fig14_tiv_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_tiv_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
