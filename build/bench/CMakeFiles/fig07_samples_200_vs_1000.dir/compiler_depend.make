# Empty compiler generated dependencies file for fig07_samples_200_vs_1000.
# This may be replaced when dependencies are built.
