# Empty compiler generated dependencies file for fig15_tiv_scatter.
# This may be replaced when dependencies are built.
