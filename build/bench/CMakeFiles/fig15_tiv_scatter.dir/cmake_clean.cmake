file(REMOVE_RECURSE
  "CMakeFiles/fig15_tiv_scatter.dir/fig15_tiv_scatter.cpp.o"
  "CMakeFiles/fig15_tiv_scatter.dir/fig15_tiv_scatter.cpp.o.d"
  "fig15_tiv_scatter"
  "fig15_tiv_scatter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_tiv_scatter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
