# Empty compiler generated dependencies file for fig05_forwarding_delays.
# This may be replaced when dependencies are built.
