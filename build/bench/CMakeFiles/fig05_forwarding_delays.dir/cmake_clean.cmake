file(REMOVE_RECURSE
  "CMakeFiles/fig05_forwarding_delays.dir/fig05_forwarding_delays.cpp.o"
  "CMakeFiles/fig05_forwarding_delays.dir/fig05_forwarding_delays.cpp.o.d"
  "fig05_forwarding_delays"
  "fig05_forwarding_delays.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_forwarding_delays.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
