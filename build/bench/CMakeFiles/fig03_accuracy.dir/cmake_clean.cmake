file(REMOVE_RECURSE
  "CMakeFiles/fig03_accuracy.dir/fig03_accuracy.cpp.o"
  "CMakeFiles/fig03_accuracy.dir/fig03_accuracy.cpp.o.d"
  "fig03_accuracy"
  "fig03_accuracy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
