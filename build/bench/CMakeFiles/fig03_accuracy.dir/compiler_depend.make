# Empty compiler generated dependencies file for fig03_accuracy.
# This may be replaced when dependencies are built.
