# Empty dependencies file for ting_bench_common.
# This may be replaced when dependencies are built.
