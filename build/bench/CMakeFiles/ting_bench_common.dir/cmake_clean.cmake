file(REMOVE_RECURSE
  "CMakeFiles/ting_bench_common.dir/bench_common.cpp.o"
  "CMakeFiles/ting_bench_common.dir/bench_common.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
