file(REMOVE_RECURSE
  "CMakeFiles/fig17_circuit_entropy.dir/fig17_circuit_entropy.cpp.o"
  "CMakeFiles/fig17_circuit_entropy.dir/fig17_circuit_entropy.cpp.o.d"
  "fig17_circuit_entropy"
  "fig17_circuit_entropy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_circuit_entropy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
