# Empty compiler generated dependencies file for fig17_circuit_entropy.
# This may be replaced when dependencies are built.
