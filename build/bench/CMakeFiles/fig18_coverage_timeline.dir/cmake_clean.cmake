file(REMOVE_RECURSE
  "CMakeFiles/fig18_coverage_timeline.dir/fig18_coverage_timeline.cpp.o"
  "CMakeFiles/fig18_coverage_timeline.dir/fig18_coverage_timeline.cpp.o.d"
  "fig18_coverage_timeline"
  "fig18_coverage_timeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_coverage_timeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
