# Empty dependencies file for fig18_coverage_timeline.
# This may be replaced when dependencies are built.
