# Empty dependencies file for fig06_sample_convergence.
# This may be replaced when dependencies are built.
