file(REMOVE_RECURSE
  "CMakeFiles/fig06_sample_convergence.dir/fig06_sample_convergence.cpp.o"
  "CMakeFiles/fig06_sample_convergence.dir/fig06_sample_convergence.cpp.o.d"
  "fig06_sample_convergence"
  "fig06_sample_convergence.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_sample_convergence.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
