# Empty compiler generated dependencies file for fig10_stability_boxplots.
# This may be replaced when dependencies are built.
