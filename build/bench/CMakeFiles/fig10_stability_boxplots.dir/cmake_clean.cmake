file(REMOVE_RECURSE
  "CMakeFiles/fig10_stability_boxplots.dir/fig10_stability_boxplots.cpp.o"
  "CMakeFiles/fig10_stability_boxplots.dir/fig10_stability_boxplots.cpp.o.d"
  "fig10_stability_boxplots"
  "fig10_stability_boxplots.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig10_stability_boxplots.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
