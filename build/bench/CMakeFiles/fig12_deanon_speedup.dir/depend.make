# Empty dependencies file for fig12_deanon_speedup.
# This may be replaced when dependencies are built.
