# Empty dependencies file for fig11_allpairs_rtt_cdf.
# This may be replaced when dependencies are built.
