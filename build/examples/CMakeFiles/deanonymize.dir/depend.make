# Empty dependencies file for deanonymize.
# This may be replaced when dependencies are built.
