file(REMOVE_RECURSE
  "CMakeFiles/deanonymize.dir/deanonymize.cpp.o"
  "CMakeFiles/deanonymize.dir/deanonymize.cpp.o.d"
  "deanonymize"
  "deanonymize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deanonymize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
