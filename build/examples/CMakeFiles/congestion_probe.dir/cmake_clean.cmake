file(REMOVE_RECURSE
  "CMakeFiles/congestion_probe.dir/congestion_probe.cpp.o"
  "CMakeFiles/congestion_probe.dir/congestion_probe.cpp.o.d"
  "congestion_probe"
  "congestion_probe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/congestion_probe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
