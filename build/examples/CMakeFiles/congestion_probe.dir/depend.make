# Empty dependencies file for congestion_probe.
# This may be replaced when dependencies are built.
