file(REMOVE_RECURSE
  "CMakeFiles/measure_testbed.dir/measure_testbed.cpp.o"
  "CMakeFiles/measure_testbed.dir/measure_testbed.cpp.o.d"
  "measure_testbed"
  "measure_testbed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measure_testbed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
