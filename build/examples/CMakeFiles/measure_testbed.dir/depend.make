# Empty dependencies file for measure_testbed.
# This may be replaced when dependencies are built.
