file(REMOVE_RECURSE
  "CMakeFiles/find_fast_circuits.dir/find_fast_circuits.cpp.o"
  "CMakeFiles/find_fast_circuits.dir/find_fast_circuits.cpp.o.d"
  "find_fast_circuits"
  "find_fast_circuits.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/find_fast_circuits.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
