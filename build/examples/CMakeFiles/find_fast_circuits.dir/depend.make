# Empty dependencies file for find_fast_circuits.
# This may be replaced when dependencies are built.
