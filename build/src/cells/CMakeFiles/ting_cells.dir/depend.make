# Empty dependencies file for ting_cells.
# This may be replaced when dependencies are built.
