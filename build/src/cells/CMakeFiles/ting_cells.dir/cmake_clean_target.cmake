file(REMOVE_RECURSE
  "libting_cells.a"
)
