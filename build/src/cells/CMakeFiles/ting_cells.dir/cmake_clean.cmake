file(REMOVE_RECURSE
  "CMakeFiles/ting_cells.dir/cell.cpp.o"
  "CMakeFiles/ting_cells.dir/cell.cpp.o.d"
  "CMakeFiles/ting_cells.dir/relay_payload.cpp.o"
  "CMakeFiles/ting_cells.dir/relay_payload.cpp.o.d"
  "libting_cells.a"
  "libting_cells.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_cells.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
