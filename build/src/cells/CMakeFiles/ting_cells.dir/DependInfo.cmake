
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cells/cell.cpp" "src/cells/CMakeFiles/ting_cells.dir/cell.cpp.o" "gcc" "src/cells/CMakeFiles/ting_cells.dir/cell.cpp.o.d"
  "/root/repo/src/cells/relay_payload.cpp" "src/cells/CMakeFiles/ting_cells.dir/relay_payload.cpp.o" "gcc" "src/cells/CMakeFiles/ting_cells.dir/relay_payload.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ting_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ting_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
