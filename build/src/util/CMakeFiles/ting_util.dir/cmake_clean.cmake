file(REMOVE_RECURSE
  "CMakeFiles/ting_util.dir/bytes.cpp.o"
  "CMakeFiles/ting_util.dir/bytes.cpp.o.d"
  "CMakeFiles/ting_util.dir/ip.cpp.o"
  "CMakeFiles/ting_util.dir/ip.cpp.o.d"
  "CMakeFiles/ting_util.dir/log.cpp.o"
  "CMakeFiles/ting_util.dir/log.cpp.o.d"
  "CMakeFiles/ting_util.dir/rng.cpp.o"
  "CMakeFiles/ting_util.dir/rng.cpp.o.d"
  "CMakeFiles/ting_util.dir/stats.cpp.o"
  "CMakeFiles/ting_util.dir/stats.cpp.o.d"
  "libting_util.a"
  "libting_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
