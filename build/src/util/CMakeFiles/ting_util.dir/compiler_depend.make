# Empty compiler generated dependencies file for ting_util.
# This may be replaced when dependencies are built.
