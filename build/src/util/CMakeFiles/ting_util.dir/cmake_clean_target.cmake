file(REMOVE_RECURSE
  "libting_util.a"
)
