# Empty compiler generated dependencies file for ting_scenario.
# This may be replaced when dependencies are built.
