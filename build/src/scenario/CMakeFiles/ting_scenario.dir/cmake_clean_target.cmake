file(REMOVE_RECURSE
  "libting_scenario.a"
)
