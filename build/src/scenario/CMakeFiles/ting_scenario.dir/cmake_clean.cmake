file(REMOVE_RECURSE
  "CMakeFiles/ting_scenario.dir/rdns.cpp.o"
  "CMakeFiles/ting_scenario.dir/rdns.cpp.o.d"
  "CMakeFiles/ting_scenario.dir/testbed.cpp.o"
  "CMakeFiles/ting_scenario.dir/testbed.cpp.o.d"
  "CMakeFiles/ting_scenario.dir/timeline.cpp.o"
  "CMakeFiles/ting_scenario.dir/timeline.cpp.o.d"
  "libting_scenario.a"
  "libting_scenario.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_scenario.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
