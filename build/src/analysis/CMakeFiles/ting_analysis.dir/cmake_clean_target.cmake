file(REMOVE_RECURSE
  "libting_analysis.a"
)
