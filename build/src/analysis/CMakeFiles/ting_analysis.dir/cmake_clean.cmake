file(REMOVE_RECURSE
  "CMakeFiles/ting_analysis.dir/circuits.cpp.o"
  "CMakeFiles/ting_analysis.dir/circuits.cpp.o.d"
  "CMakeFiles/ting_analysis.dir/congestion.cpp.o"
  "CMakeFiles/ting_analysis.dir/congestion.cpp.o.d"
  "CMakeFiles/ting_analysis.dir/coordinates.cpp.o"
  "CMakeFiles/ting_analysis.dir/coordinates.cpp.o.d"
  "CMakeFiles/ting_analysis.dir/coverage.cpp.o"
  "CMakeFiles/ting_analysis.dir/coverage.cpp.o.d"
  "CMakeFiles/ting_analysis.dir/deanon.cpp.o"
  "CMakeFiles/ting_analysis.dir/deanon.cpp.o.d"
  "CMakeFiles/ting_analysis.dir/path_selection.cpp.o"
  "CMakeFiles/ting_analysis.dir/path_selection.cpp.o.d"
  "CMakeFiles/ting_analysis.dir/tiv.cpp.o"
  "CMakeFiles/ting_analysis.dir/tiv.cpp.o.d"
  "libting_analysis.a"
  "libting_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
