# Empty compiler generated dependencies file for ting_analysis.
# This may be replaced when dependencies are built.
