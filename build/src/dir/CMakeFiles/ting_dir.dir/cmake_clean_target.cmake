file(REMOVE_RECURSE
  "libting_dir.a"
)
