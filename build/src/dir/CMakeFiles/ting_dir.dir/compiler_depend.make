# Empty compiler generated dependencies file for ting_dir.
# This may be replaced when dependencies are built.
