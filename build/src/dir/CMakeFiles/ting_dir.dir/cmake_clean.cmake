file(REMOVE_RECURSE
  "CMakeFiles/ting_dir.dir/authority.cpp.o"
  "CMakeFiles/ting_dir.dir/authority.cpp.o.d"
  "CMakeFiles/ting_dir.dir/consensus.cpp.o"
  "CMakeFiles/ting_dir.dir/consensus.cpp.o.d"
  "CMakeFiles/ting_dir.dir/descriptor.cpp.o"
  "CMakeFiles/ting_dir.dir/descriptor.cpp.o.d"
  "CMakeFiles/ting_dir.dir/exit_policy.cpp.o"
  "CMakeFiles/ting_dir.dir/exit_policy.cpp.o.d"
  "CMakeFiles/ting_dir.dir/fingerprint.cpp.o"
  "CMakeFiles/ting_dir.dir/fingerprint.cpp.o.d"
  "libting_dir.a"
  "libting_dir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_dir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
