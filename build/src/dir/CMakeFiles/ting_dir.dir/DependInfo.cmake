
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dir/authority.cpp" "src/dir/CMakeFiles/ting_dir.dir/authority.cpp.o" "gcc" "src/dir/CMakeFiles/ting_dir.dir/authority.cpp.o.d"
  "/root/repo/src/dir/consensus.cpp" "src/dir/CMakeFiles/ting_dir.dir/consensus.cpp.o" "gcc" "src/dir/CMakeFiles/ting_dir.dir/consensus.cpp.o.d"
  "/root/repo/src/dir/descriptor.cpp" "src/dir/CMakeFiles/ting_dir.dir/descriptor.cpp.o" "gcc" "src/dir/CMakeFiles/ting_dir.dir/descriptor.cpp.o.d"
  "/root/repo/src/dir/exit_policy.cpp" "src/dir/CMakeFiles/ting_dir.dir/exit_policy.cpp.o" "gcc" "src/dir/CMakeFiles/ting_dir.dir/exit_policy.cpp.o.d"
  "/root/repo/src/dir/fingerprint.cpp" "src/dir/CMakeFiles/ting_dir.dir/fingerprint.cpp.o" "gcc" "src/dir/CMakeFiles/ting_dir.dir/fingerprint.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ting_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ting_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/ting_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ting_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
