file(REMOVE_RECURSE
  "libting_ctrl.a"
)
