# Empty dependencies file for ting_ctrl.
# This may be replaced when dependencies are built.
