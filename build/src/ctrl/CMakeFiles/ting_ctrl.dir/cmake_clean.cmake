file(REMOVE_RECURSE
  "CMakeFiles/ting_ctrl.dir/control_server.cpp.o"
  "CMakeFiles/ting_ctrl.dir/control_server.cpp.o.d"
  "CMakeFiles/ting_ctrl.dir/controller.cpp.o"
  "CMakeFiles/ting_ctrl.dir/controller.cpp.o.d"
  "libting_ctrl.a"
  "libting_ctrl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_ctrl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
