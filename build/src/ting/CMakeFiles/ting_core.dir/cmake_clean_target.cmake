file(REMOVE_RECURSE
  "libting_core.a"
)
