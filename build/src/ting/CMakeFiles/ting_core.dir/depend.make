# Empty dependencies file for ting_core.
# This may be replaced when dependencies are built.
