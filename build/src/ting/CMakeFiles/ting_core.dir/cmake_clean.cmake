file(REMOVE_RECURSE
  "CMakeFiles/ting_core.dir/forwarding_delay.cpp.o"
  "CMakeFiles/ting_core.dir/forwarding_delay.cpp.o.d"
  "CMakeFiles/ting_core.dir/measurement_host.cpp.o"
  "CMakeFiles/ting_core.dir/measurement_host.cpp.o.d"
  "CMakeFiles/ting_core.dir/measurer.cpp.o"
  "CMakeFiles/ting_core.dir/measurer.cpp.o.d"
  "CMakeFiles/ting_core.dir/rtt_matrix.cpp.o"
  "CMakeFiles/ting_core.dir/rtt_matrix.cpp.o.d"
  "CMakeFiles/ting_core.dir/scheduler.cpp.o"
  "CMakeFiles/ting_core.dir/scheduler.cpp.o.d"
  "libting_core.a"
  "libting_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
