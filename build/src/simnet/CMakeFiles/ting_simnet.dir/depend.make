# Empty dependencies file for ting_simnet.
# This may be replaced when dependencies are built.
