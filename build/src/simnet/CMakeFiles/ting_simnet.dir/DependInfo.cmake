
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/simnet/event_loop.cpp" "src/simnet/CMakeFiles/ting_simnet.dir/event_loop.cpp.o" "gcc" "src/simnet/CMakeFiles/ting_simnet.dir/event_loop.cpp.o.d"
  "/root/repo/src/simnet/latency_model.cpp" "src/simnet/CMakeFiles/ting_simnet.dir/latency_model.cpp.o" "gcc" "src/simnet/CMakeFiles/ting_simnet.dir/latency_model.cpp.o.d"
  "/root/repo/src/simnet/network.cpp" "src/simnet/CMakeFiles/ting_simnet.dir/network.cpp.o" "gcc" "src/simnet/CMakeFiles/ting_simnet.dir/network.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ting_util.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ting_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
