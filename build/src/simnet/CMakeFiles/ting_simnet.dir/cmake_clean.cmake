file(REMOVE_RECURSE
  "CMakeFiles/ting_simnet.dir/event_loop.cpp.o"
  "CMakeFiles/ting_simnet.dir/event_loop.cpp.o.d"
  "CMakeFiles/ting_simnet.dir/latency_model.cpp.o"
  "CMakeFiles/ting_simnet.dir/latency_model.cpp.o.d"
  "CMakeFiles/ting_simnet.dir/network.cpp.o"
  "CMakeFiles/ting_simnet.dir/network.cpp.o.d"
  "libting_simnet.a"
  "libting_simnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_simnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
