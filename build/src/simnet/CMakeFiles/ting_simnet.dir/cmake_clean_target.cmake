file(REMOVE_RECURSE
  "libting_simnet.a"
)
