# Empty dependencies file for ting_geo.
# This may be replaced when dependencies are built.
