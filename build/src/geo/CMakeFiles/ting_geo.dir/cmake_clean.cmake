file(REMOVE_RECURSE
  "CMakeFiles/ting_geo.dir/cities.cpp.o"
  "CMakeFiles/ting_geo.dir/cities.cpp.o.d"
  "CMakeFiles/ting_geo.dir/geo.cpp.o"
  "CMakeFiles/ting_geo.dir/geo.cpp.o.d"
  "CMakeFiles/ting_geo.dir/geolocation.cpp.o"
  "CMakeFiles/ting_geo.dir/geolocation.cpp.o.d"
  "CMakeFiles/ting_geo.dir/ipalloc.cpp.o"
  "CMakeFiles/ting_geo.dir/ipalloc.cpp.o.d"
  "libting_geo.a"
  "libting_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
