
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/geo/cities.cpp" "src/geo/CMakeFiles/ting_geo.dir/cities.cpp.o" "gcc" "src/geo/CMakeFiles/ting_geo.dir/cities.cpp.o.d"
  "/root/repo/src/geo/geo.cpp" "src/geo/CMakeFiles/ting_geo.dir/geo.cpp.o" "gcc" "src/geo/CMakeFiles/ting_geo.dir/geo.cpp.o.d"
  "/root/repo/src/geo/geolocation.cpp" "src/geo/CMakeFiles/ting_geo.dir/geolocation.cpp.o" "gcc" "src/geo/CMakeFiles/ting_geo.dir/geolocation.cpp.o.d"
  "/root/repo/src/geo/ipalloc.cpp" "src/geo/CMakeFiles/ting_geo.dir/ipalloc.cpp.o" "gcc" "src/geo/CMakeFiles/ting_geo.dir/ipalloc.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
