file(REMOVE_RECURSE
  "libting_geo.a"
)
