# Empty compiler generated dependencies file for ting_echo.
# This may be replaced when dependencies are built.
