file(REMOVE_RECURSE
  "libting_echo.a"
)
