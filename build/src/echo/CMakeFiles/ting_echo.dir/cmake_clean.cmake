file(REMOVE_RECURSE
  "CMakeFiles/ting_echo.dir/echo.cpp.o"
  "CMakeFiles/ting_echo.dir/echo.cpp.o.d"
  "libting_echo.a"
  "libting_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
