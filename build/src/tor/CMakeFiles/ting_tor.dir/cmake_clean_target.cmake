file(REMOVE_RECURSE
  "libting_tor.a"
)
