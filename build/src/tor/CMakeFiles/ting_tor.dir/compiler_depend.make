# Empty compiler generated dependencies file for ting_tor.
# This may be replaced when dependencies are built.
