
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/tor/hop_crypto.cpp" "src/tor/CMakeFiles/ting_tor.dir/hop_crypto.cpp.o" "gcc" "src/tor/CMakeFiles/ting_tor.dir/hop_crypto.cpp.o.d"
  "/root/repo/src/tor/onion_proxy.cpp" "src/tor/CMakeFiles/ting_tor.dir/onion_proxy.cpp.o" "gcc" "src/tor/CMakeFiles/ting_tor.dir/onion_proxy.cpp.o.d"
  "/root/repo/src/tor/or_link.cpp" "src/tor/CMakeFiles/ting_tor.dir/or_link.cpp.o" "gcc" "src/tor/CMakeFiles/ting_tor.dir/or_link.cpp.o.d"
  "/root/repo/src/tor/relay.cpp" "src/tor/CMakeFiles/ting_tor.dir/relay.cpp.o" "gcc" "src/tor/CMakeFiles/ting_tor.dir/relay.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ting_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/ting_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/simnet/CMakeFiles/ting_simnet.dir/DependInfo.cmake"
  "/root/repo/build/src/dir/CMakeFiles/ting_dir.dir/DependInfo.cmake"
  "/root/repo/build/src/cells/CMakeFiles/ting_cells.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/ting_geo.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
