file(REMOVE_RECURSE
  "CMakeFiles/ting_tor.dir/hop_crypto.cpp.o"
  "CMakeFiles/ting_tor.dir/hop_crypto.cpp.o.d"
  "CMakeFiles/ting_tor.dir/onion_proxy.cpp.o"
  "CMakeFiles/ting_tor.dir/onion_proxy.cpp.o.d"
  "CMakeFiles/ting_tor.dir/or_link.cpp.o"
  "CMakeFiles/ting_tor.dir/or_link.cpp.o.d"
  "CMakeFiles/ting_tor.dir/relay.cpp.o"
  "CMakeFiles/ting_tor.dir/relay.cpp.o.d"
  "libting_tor.a"
  "libting_tor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_tor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
