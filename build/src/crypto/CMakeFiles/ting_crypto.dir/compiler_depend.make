# Empty compiler generated dependencies file for ting_crypto.
# This may be replaced when dependencies are built.
