
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/chacha.cpp" "src/crypto/CMakeFiles/ting_crypto.dir/chacha.cpp.o" "gcc" "src/crypto/CMakeFiles/ting_crypto.dir/chacha.cpp.o.d"
  "/root/repo/src/crypto/handshake.cpp" "src/crypto/CMakeFiles/ting_crypto.dir/handshake.cpp.o" "gcc" "src/crypto/CMakeFiles/ting_crypto.dir/handshake.cpp.o.d"
  "/root/repo/src/crypto/hash.cpp" "src/crypto/CMakeFiles/ting_crypto.dir/hash.cpp.o" "gcc" "src/crypto/CMakeFiles/ting_crypto.dir/hash.cpp.o.d"
  "/root/repo/src/crypto/x25519.cpp" "src/crypto/CMakeFiles/ting_crypto.dir/x25519.cpp.o" "gcc" "src/crypto/CMakeFiles/ting_crypto.dir/x25519.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/ting_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
