file(REMOVE_RECURSE
  "CMakeFiles/ting_crypto.dir/chacha.cpp.o"
  "CMakeFiles/ting_crypto.dir/chacha.cpp.o.d"
  "CMakeFiles/ting_crypto.dir/handshake.cpp.o"
  "CMakeFiles/ting_crypto.dir/handshake.cpp.o.d"
  "CMakeFiles/ting_crypto.dir/hash.cpp.o"
  "CMakeFiles/ting_crypto.dir/hash.cpp.o.d"
  "CMakeFiles/ting_crypto.dir/x25519.cpp.o"
  "CMakeFiles/ting_crypto.dir/x25519.cpp.o.d"
  "libting_crypto.a"
  "libting_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
