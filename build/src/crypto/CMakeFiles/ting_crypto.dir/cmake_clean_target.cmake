file(REMOVE_RECURSE
  "libting_crypto.a"
)
