# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("util")
subdirs("crypto")
subdirs("geo")
subdirs("simnet")
subdirs("dir")
subdirs("cells")
subdirs("tor")
subdirs("ctrl")
subdirs("echo")
subdirs("ting")
subdirs("scenario")
subdirs("analysis")
