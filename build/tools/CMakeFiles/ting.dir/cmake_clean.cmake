file(REMOVE_RECURSE
  "CMakeFiles/ting.dir/ting_cli.cpp.o"
  "CMakeFiles/ting.dir/ting_cli.cpp.o.d"
  "ting"
  "ting.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
