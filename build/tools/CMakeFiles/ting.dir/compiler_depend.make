# Empty compiler generated dependencies file for ting.
# This may be replaced when dependencies are built.
