# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/geo_test[1]_include.cmake")
include("/root/repo/build/tests/simnet_test[1]_include.cmake")
include("/root/repo/build/tests/dir_test[1]_include.cmake")
include("/root/repo/build/tests/cells_test[1]_include.cmake")
include("/root/repo/build/tests/tor_test[1]_include.cmake")
include("/root/repo/build/tests/ctrl_test[1]_include.cmake")
include("/root/repo/build/tests/ting_test[1]_include.cmake")
include("/root/repo/build/tests/scenario_test[1]_include.cmake")
include("/root/repo/build/tests/analysis_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/path_selection_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/failure_test[1]_include.cmake")
include("/root/repo/build/tests/flow_control_test[1]_include.cmake")
include("/root/repo/build/tests/coordinates_test[1]_include.cmake")
include("/root/repo/build/tests/or_link_test[1]_include.cmake")
include("/root/repo/build/tests/congestion_test[1]_include.cmake")
include("/root/repo/build/tests/echo_test[1]_include.cmake")
include("/root/repo/build/tests/measurement_host_test[1]_include.cmake")
