file(REMOVE_RECURSE
  "CMakeFiles/measurement_host_test.dir/measurement_host_test.cpp.o"
  "CMakeFiles/measurement_host_test.dir/measurement_host_test.cpp.o.d"
  "measurement_host_test"
  "measurement_host_test.pdb"
  "measurement_host_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/measurement_host_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
