# Empty compiler generated dependencies file for measurement_host_test.
# This may be replaced when dependencies are built.
