file(REMOVE_RECURSE
  "CMakeFiles/or_link_test.dir/or_link_test.cpp.o"
  "CMakeFiles/or_link_test.dir/or_link_test.cpp.o.d"
  "or_link_test"
  "or_link_test.pdb"
  "or_link_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/or_link_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
