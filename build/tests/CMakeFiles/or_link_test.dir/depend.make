# Empty dependencies file for or_link_test.
# This may be replaced when dependencies are built.
