# Empty dependencies file for ting_test.
# This may be replaced when dependencies are built.
