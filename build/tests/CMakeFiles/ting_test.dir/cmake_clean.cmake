file(REMOVE_RECURSE
  "CMakeFiles/ting_test.dir/ting_test.cpp.o"
  "CMakeFiles/ting_test.dir/ting_test.cpp.o.d"
  "ting_test"
  "ting_test.pdb"
  "ting_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ting_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
