file(REMOVE_RECURSE
  "CMakeFiles/coordinates_test.dir/coordinates_test.cpp.o"
  "CMakeFiles/coordinates_test.dir/coordinates_test.cpp.o.d"
  "coordinates_test"
  "coordinates_test.pdb"
  "coordinates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coordinates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
