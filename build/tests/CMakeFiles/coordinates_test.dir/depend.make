# Empty dependencies file for coordinates_test.
# This may be replaced when dependencies are built.
