# Empty compiler generated dependencies file for tor_test.
# This may be replaced when dependencies are built.
