# Empty dependencies file for path_selection_test.
# This may be replaced when dependencies are built.
