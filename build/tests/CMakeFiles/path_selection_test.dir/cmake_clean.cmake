file(REMOVE_RECURSE
  "CMakeFiles/path_selection_test.dir/path_selection_test.cpp.o"
  "CMakeFiles/path_selection_test.dir/path_selection_test.cpp.o.d"
  "path_selection_test"
  "path_selection_test.pdb"
  "path_selection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/path_selection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
