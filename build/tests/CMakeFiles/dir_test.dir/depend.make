# Empty dependencies file for dir_test.
# This may be replaced when dependencies are built.
