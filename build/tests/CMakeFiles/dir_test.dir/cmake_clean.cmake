file(REMOVE_RECURSE
  "CMakeFiles/dir_test.dir/dir_test.cpp.o"
  "CMakeFiles/dir_test.dir/dir_test.cpp.o.d"
  "dir_test"
  "dir_test.pdb"
  "dir_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dir_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
